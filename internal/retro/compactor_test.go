package retro

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"rql/internal/storage"
)

// sealAllOptions is the test geometry: tiny segments, no hot-tail
// reserve, and a background interval long enough that only explicit
// SealNow calls seal (deterministic tiering).
func sealAllOptions(segPages int) CompactionOptions {
	return CompactionOptions{SegmentPages: segPages, MinTailPages: -1, Interval: time.Hour}
}

// buildHistory archives pages by overwriting a small working set across
// many snapshots; returns the ids of every snapshot declared.
func buildSealHistory(t *testing.T, e *env, snapshots, pagesPerStep int) []SnapshotID {
	t.Helper()
	ids := make([]storage.PageID, pagesPerStep)
	var snaps []SnapshotID
	for s := 0; s < snapshots; s++ {
		vals := make([]byte, pagesPerStep)
		for i := range vals {
			vals[i] = byte(s + i)
		}
		snap, out := e.writePages(t, ids, vals, true)
		copy(ids, out)
		snaps = append(snaps, snap)
		// Overwrite after the declaration so the declared state is
		// archived (capture-on-first-modification).
		for i := range vals {
			vals[i] = byte(s + i + 100)
		}
		_, _ = e.writePages(t, ids, vals, false)
	}
	return snaps
}

func TestSegmentRoundtripAndDedup(t *testing.T) {
	// 40 slots drawn from 10 distinct page contents: dedup must store
	// each content once and the slot index must reproduce every slot.
	sb := newSegmentBuilder(0)
	var want []storage.PageData
	for i := 0; i < 40; i++ {
		var p storage.PageData
		for j := range p {
			p[j] = byte((i%10)*31 + j%7)
		}
		want = append(want, p)
		sb.add(&p)
	}
	blob, err := sb.encode()
	if err != nil {
		t.Fatal(err)
	}
	sg, err := parseSegmentMeta(blob)
	if err != nil {
		t.Fatal(err)
	}
	sg.blob = blob
	if sg.slots != 40 {
		t.Fatalf("slots = %d, want 40", sg.slots)
	}
	if sg.nuniq != 10 {
		t.Fatalf("nuniq = %d, want 10 (dedup)", sg.nuniq)
	}
	if sg.diskBytes >= sg.logicalBytes() {
		t.Errorf("segment is not smaller than flat: %d disk vs %d logical", sg.diskBytes, sg.logicalBytes())
	}
	bc := newBlockCache()
	for i := range want {
		var got storage.PageData
		if _, _, err := sg.readPages(int64(i), 1, []*storage.PageData{&got}, bc); err != nil {
			t.Fatalf("slot %d: %v", i, err)
		}
		if got != want[i] {
			t.Fatalf("slot %d content mismatch", i)
		}
	}
}

func TestSegmentChecksumRejectsCorruption(t *testing.T) {
	sb := newSegmentBuilder(0)
	var p storage.PageData
	for j := range p {
		p[j] = byte(j)
	}
	sb.add(&p)
	blob, err := sb.encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := parseSegmentMeta(blob); err != nil {
		t.Fatalf("pristine blob rejected: %v", err)
	}
	blob[len(blob)/2] ^= 0xff
	if _, err := parseSegmentMeta(blob); err == nil {
		t.Fatal("corrupted blob accepted")
	}
}

// TestSealedReadEquivalence is the core tiering property: sealing must
// not change a single byte any offset reads, on either backing.
func TestSealedReadEquivalence(t *testing.T) {
	for _, backing := range []string{"mem", "file"} {
		t.Run(backing, func(t *testing.T) {
			opts := Options{Compaction: sealAllOptions(8)}
			if backing == "file" {
				opts.PagelogPath = filepath.Join(t.TempDir(), "pagelog")
			}
			e := newEnv(t, opts)
			snaps := buildSealHistory(t, e, 12, 4)

			pl := e.sys.pl
			n := pl.size()
			if n < 16 {
				t.Fatalf("history too small to seal: %d pages", n)
			}
			before := make([]storage.PageData, n)
			for off := int64(0); off < n; off++ {
				if _, _, err := pl.read(off, &before[off]); err != nil {
					t.Fatalf("pre-seal read %d: %v", off, err)
				}
			}

			sealed, err := e.sys.SealNow()
			if err != nil {
				t.Fatal(err)
			}
			if sealed == 0 {
				t.Fatal("nothing sealed")
			}
			segs, sealedPages, tailPages := pl.tiers()
			if segs != sealed || sealedPages != int64(sealed*8) {
				t.Fatalf("tiers = (%d segs, %d pages), sealed %d segments", segs, sealedPages, sealed)
			}
			if sealedPages+tailPages != n {
				t.Fatalf("tiers do not cover the log: %d+%d != %d", sealedPages, tailPages, n)
			}

			for off := int64(0); off < n; off++ {
				var got storage.PageData
				if _, _, err := pl.read(off, &got); err != nil {
					t.Fatalf("post-seal read %d: %v", off, err)
				}
				if got != before[off] {
					t.Fatalf("offset %d changed after sealing", off)
				}
			}
			// Runs crossing segment/segment and segment/tail boundaries.
			for _, start := range []int64{0, 5, sealedPages - 3} {
				cnt := int(n - start)
				if cnt > 20 {
					cnt = 20
				}
				out, _, _, err := pl.readRun(start, cnt)
				if err != nil {
					t.Fatalf("readRun(%d,%d): %v", start, cnt, err)
				}
				for i, p := range out {
					if *p != before[start+int64(i)] {
						t.Fatalf("readRun slot %d+%d mismatch", start, i)
					}
				}
			}
			// Snapshot reads through the full stack, cold.
			e.sys.ResetCache()
			for i, snap := range snaps {
				r, err := e.sys.OpenSnapshot(snap)
				if err != nil {
					t.Fatalf("OpenSnapshot(%d): %v", snap, err)
				}
				r.Close()
				_ = i
			}
			logical, disk := pl.footprint()
			if logical != n*storage.PageSize {
				t.Fatalf("logical footprint = %d, want %d", logical, n*storage.PageSize)
			}
			if disk >= logical {
				t.Errorf("sealed footprint not smaller than flat: %d disk vs %d logical", disk, logical)
			}
		})
	}
}

// TestSnapshotValuesSurviveSealing checks real snapshot semantics (not
// just raw offsets) across sealing with a cold cache.
func TestSnapshotValuesSurviveSealing(t *testing.T) {
	e := newEnv(t, Options{
		PagelogPath: filepath.Join(t.TempDir(), "pagelog"),
		Compaction:  sealAllOptions(8),
	})
	snap1, ids := e.writePages(t, []storage.PageID{0, 0}, []byte{1, 2}, true)
	a, b := ids[0], ids[1]
	e.writePages(t, []storage.PageID{a, b}, []byte{3, 4}, false)
	snap2, _ := e.writePages(t, []storage.PageID{a}, []byte{5}, true)
	e.writePages(t, []storage.PageID{a}, []byte{6}, false)
	buildSealHistory(t, e, 8, 3) // push the early captures deep enough to seal

	if _, err := e.sys.SealNow(); err != nil {
		t.Fatal(err)
	}
	e.sys.ResetCache()
	if got := readSnapPage(t, e.sys, snap1, a); got != 1 {
		t.Errorf("snap1 page a = %d, want 1", got)
	}
	if got := readSnapPage(t, e.sys, snap1, b); got != 2 {
		t.Errorf("snap1 page b = %d, want 2", got)
	}
	if got := readSnapPage(t, e.sys, snap2, a); got != 5 {
		t.Errorf("snap2 page a = %d, want 5", got)
	}
	st := e.sys.Stats()
	if st.SegmentSeals == 0 || st.SealedPages == 0 {
		t.Errorf("seal counters empty: %+v", st)
	}
}

// TestSealCrashSafety simulates a kill between the blob's .tmp write
// and its rename: the seal fails, nothing is installed, reads are
// unaffected, and a reopen of the same path sweeps the partial file.
func TestSealCrashSafety(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pagelog")
	store := storage.NewStore()
	sys, err := New(store, Options{PagelogPath: path, Compaction: sealAllOptions(8)})
	if err != nil {
		t.Fatal(err)
	}
	e := &env{store: store, sys: sys}
	buildSealHistory(t, e, 12, 4)

	boom := errors.New("simulated crash")
	pl := sys.pl
	pl.mu.Lock()
	pl.injectSealErr = boom
	pl.mu.Unlock()

	if _, err := sys.SealNow(); !errors.Is(err, boom) {
		t.Fatalf("SealNow error = %v, want injected crash", err)
	}
	tmps, _ := filepath.Glob(path + ".seg-*.tmp")
	if len(tmps) != 1 {
		t.Fatalf("%d partial .tmp files after simulated crash, want 1", len(tmps))
	}
	if segs, _, _ := pl.tiers(); segs != 0 {
		t.Fatalf("%d segments installed despite crash", segs)
	}
	var p storage.PageData
	if _, _, err := pl.read(0, &p); err != nil {
		t.Fatalf("read after failed seal: %v", err)
	}
	// A later seal succeeds and coexists with the leftover .tmp.
	if n, err := sys.SealNow(); err != nil || n == 0 {
		t.Fatalf("SealNow after crash = (%d, %v)", n, err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen the same path: the archive starts empty and every stray
	// file of the previous generation — the .tmp and the sealed
	// segments — is discarded.
	store2 := storage.NewStore()
	sys2, err := New(store2, Options{PagelogPath: path, Compaction: sealAllOptions(8)})
	if err != nil {
		t.Fatal(err)
	}
	defer sys2.Close()
	strays, _ := filepath.Glob(path + ".seg-*")
	tails, _ := filepath.Glob(path + ".tail-*")
	if len(strays)+len(tails) != 0 {
		t.Fatalf("reopen left stray files: %v %v", strays, tails)
	}
	e2 := &env{store: store2, sys: sys2}
	snaps := buildSealHistory(t, e2, 4, 2)
	if got := readSnapPage(t, sys2, snaps[0], 1); got != 0 {
		// Page ids restart in the fresh store; just prove reads work.
		_ = got
	}
}

func TestRetentionDropsWholeSegments(t *testing.T) {
	e := newEnv(t, Options{
		PagelogPath: filepath.Join(t.TempDir(), "pagelog"),
		Compaction:  sealAllOptions(8),
	})
	snaps := buildSealHistory(t, e, 16, 4)
	if _, err := e.sys.SealNow(); err != nil {
		t.Fatal(err)
	}
	segsBefore, _, _ := e.sys.pl.tiers()
	if segsBefore < 3 {
		t.Fatalf("only %d segments; geometry too coarse for the test", segsBefore)
	}

	// Nothing is droppable while every snapshot is retained.
	if n := e.sys.DropExpiredSegments(); n != 0 {
		t.Fatalf("dropped %d segments with full retention", n)
	}

	keep := snaps[len(snaps)-2]
	if err := e.sys.TruncateBefore(keep); err != nil {
		t.Fatal(err)
	}
	dropped := e.sys.DropExpiredSegments()
	if dropped == 0 {
		t.Fatal("retention retired most of history but no segment dropped")
	}
	st := e.sys.Stats()
	if st.RetentionDrops != uint64(dropped) || st.RetentionDroppedPages != uint64(dropped*8) {
		t.Errorf("drop counters = %d/%d, want %d/%d",
			st.RetentionDrops, st.RetentionDroppedPages, dropped, dropped*8)
	}
	segFiles, _ := filepath.Glob(e.sys.pl.base + ".seg-*")
	segsAfter, _, _ := e.sys.pl.tiers()
	if len(segFiles) != segsAfter {
		t.Errorf("%d segment files on disk, %d segments live", len(segFiles), segsAfter)
	}

	// A dropped offset reads as ErrBadOffset; retained snapshots read.
	var p storage.PageData
	if _, _, err := e.sys.pl.read(0, &p); !errors.Is(err, ErrBadOffset) {
		t.Errorf("dropped offset read err = %v, want ErrBadOffset", err)
	}
	e.sys.ResetCache()
	r, err := e.sys.OpenSnapshot(keep)
	if err != nil {
		t.Fatalf("OpenSnapshot(retained): %v", err)
	}
	r.Close()
	if _, err := e.sys.OpenSnapshot(snaps[0]); !errors.Is(err, ErrNoSnapshot) {
		t.Errorf("truncated snapshot open err = %v, want ErrNoSnapshot", err)
	}
}

// TestRetentionDropBlockedByOpenReaders mirrors Compact's guard: a
// segment cannot vanish while any reader might still chase offsets.
func TestRetentionDropBlockedByOpenReaders(t *testing.T) {
	e := newEnv(t, Options{
		PagelogPath: filepath.Join(t.TempDir(), "pagelog"),
		Compaction:  sealAllOptions(8),
	})
	snaps := buildSealHistory(t, e, 16, 4)
	if _, err := e.sys.SealNow(); err != nil {
		t.Fatal(err)
	}
	r, err := e.sys.OpenSnapshot(snaps[len(snaps)-1])
	if err != nil {
		t.Fatal(err)
	}
	if err := e.sys.TruncateBefore(snaps[len(snaps)-2]); err != nil {
		t.Fatal(err)
	}
	if n := e.sys.DropExpiredSegments(); n != 0 {
		t.Fatalf("dropped %d segments with an open reader", n)
	}
	r.Close()
	if n := e.sys.DropExpiredSegments(); n == 0 {
		t.Fatal("nothing dropped after the reader closed")
	}
}

// TestPagelogCloseDiscardsStaged pins the teardown path: close during a
// staged group must drop the staged pages and leave staging mode, so
// the closed pagelog pins no page versions.
func TestPagelogCloseDiscardsStaged(t *testing.T) {
	pl, err := newPagelog("")
	if err != nil {
		t.Fatal(err)
	}
	pl.beginStage()
	var p storage.PageData
	if _, err := pl.append(&p); err != nil {
		t.Fatal(err)
	}
	if _, err := pl.append(&p); err != nil {
		t.Fatal(err)
	}
	if pl.size() != 2 {
		t.Fatalf("size with staged pages = %d, want 2", pl.size())
	}
	if err := pl.close(); err != nil {
		t.Fatal(err)
	}
	if pl.staged != nil || pl.staging {
		t.Fatalf("close left staging state: staged=%v staging=%v", pl.staged, pl.staging)
	}
	if pl.size() != 0 {
		t.Fatalf("size after close = %d, want 0 (staged discarded)", pl.size())
	}
}

// TestCompactOverTiers: the offset-remapping Compact must work when the
// surviving pages live in sealed segments, and produce a fresh flat
// generation with no leftover segment files.
func TestCompactOverTiers(t *testing.T) {
	e := newEnv(t, Options{
		PagelogPath: filepath.Join(t.TempDir(), "pagelog"),
		Compaction:  sealAllOptions(8),
	})
	snaps := buildSealHistory(t, e, 16, 4)
	if _, err := e.sys.SealNow(); err != nil {
		t.Fatal(err)
	}
	keep := snaps[len(snaps)-3]
	if err := e.sys.TruncateBefore(keep); err != nil {
		t.Fatal(err)
	}
	if _, err := e.sys.Compact(); err != nil {
		t.Fatal(err)
	}
	if segs, _, _ := e.sys.pl.tiers(); segs != 0 {
		t.Fatalf("compacted generation still has %d segments", segs)
	}
	e.sys.ResetCache()
	r, err := e.sys.OpenSnapshot(keep)
	if err != nil {
		t.Fatalf("OpenSnapshot after Compact: %v", err)
	}
	r.Close()
	// The new generation seals again without tripping on old files.
	buildSealHistory(t, e, 8, 4)
	if n, err := e.sys.SealNow(); err != nil || n == 0 {
		t.Fatalf("SealNow on compacted generation = (%d, %v)", n, err)
	}
}

// TestCompactorSmoke races the background compactor (1ms interval,
// tiny segments) against writers, snapshot readers, and retention.
// Run under -race this is the tiering torture test `make check` wires
// in as compact-smoke.
func TestCompactorSmoke(t *testing.T) {
	e := newEnv(t, Options{
		PagelogPath: filepath.Join(t.TempDir(), "pagelog"),
		Compaction: CompactionOptions{
			Enabled:      true,
			SegmentPages: 8,
			MinTailPages: -1,
			Interval:     time.Millisecond,
		},
	})
	var (
		mu    sync.Mutex
		snaps []SnapshotID
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Writer: keeps declaring snapshots and overwriting pages.
	wg.Add(1)
	go func() {
		defer wg.Done()
		ids := make([]storage.PageID, 4)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			vals := []byte{byte(i), byte(i + 1), byte(i + 2), byte(i + 3)}
			snap, out := e.writePages(t, ids, vals, true)
			copy(ids, out)
			mu.Lock()
			snaps = append(snaps, snap)
			mu.Unlock()
			_, _ = e.writePages(t, ids, []byte{byte(i + 9), byte(i + 8), byte(i + 7), byte(i + 6)}, false)
		}
	}()

	// Readers: open random retained snapshots and read through them.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				mu.Lock()
				var snap SnapshotID
				if len(snaps) > 0 {
					snap = snaps[rng.Intn(len(snaps))]
				}
				mu.Unlock()
				if snap == 0 {
					continue
				}
				r, err := e.sys.OpenSnapshot(snap)
				if err != nil {
					continue // possibly truncated meanwhile
				}
				r.Close()
			}
		}(int64(w + 1))
	}

	// Retention: periodically truncates to the recent half.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(5 * time.Millisecond):
			}
			mu.Lock()
			var keep SnapshotID
			if len(snaps) > 4 {
				keep = snaps[len(snaps)-3]
			}
			mu.Unlock()
			if keep != 0 {
				_ = e.sys.TruncateBefore(keep)
			}
		}
	}()

	time.Sleep(250 * time.Millisecond)
	close(stop)
	wg.Wait()

	st := e.sys.Stats()
	if st.SegmentSeals == 0 {
		t.Error("background compactor never sealed a segment")
	}
	// The newest retained snapshots must still read correctly.
	mu.Lock()
	tail := append([]SnapshotID(nil), snaps[len(snaps)-2:]...)
	mu.Unlock()
	e.sys.ResetCache()
	for _, snap := range tail {
		r, err := e.sys.OpenSnapshot(snap)
		if err != nil {
			t.Fatalf("OpenSnapshot(%d) after smoke: %v", snap, err)
		}
		r.Close()
	}
}

// BenchmarkPagelogReadRun pins readRun's allocation behaviour: the
// slab layout costs 2 allocations per run (pages + pointer slice)
// instead of n+2, whatever the run length.
func BenchmarkPagelogReadRun(b *testing.B) {
	for _, n := range []int{16, 128} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			pl, err := newPagelog("")
			if err != nil {
				b.Fatal(err)
			}
			var p storage.PageData
			for i := 0; i < 2*n; i++ {
				p[0] = byte(i)
				if _, err := pl.append(&p); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, _, err := pl.readRun(int64(i%n), n); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
