package retro

import (
	"sync"
	"testing"
	"time"

	"rql/internal/storage"
)

// archiveScattered commits one snapshot over 2n fresh pages and then
// overwrites all of them, so every pre-state is archived. Pages are
// archived in order, giving contiguous Pagelog offsets; callers that
// need fragmented device commands (one per page instead of one
// coalesced run) fetch every other page.
func archiveScattered(t *testing.T, e *env, n int) (SnapshotID, []storage.PageID) {
	t.Helper()
	ids := make([]storage.PageID, 2*n)
	vals := make([]byte, 2*n)
	for i := range vals {
		vals[i] = byte(i + 1)
	}
	snap, out := e.writePages(t, ids, vals, true)
	for i := range vals {
		vals[i] = byte(i + 101)
	}
	e.writePages(t, out, vals, false)
	every := make([]storage.PageID, 0, n)
	for i := 0; i < 2*n; i += 2 {
		every = append(every, out[i])
	}
	return snap, every
}

// At queue depth K, K concurrent demand reads overlap their service
// latency: total wall time is a small multiple of one latency, not K
// of them, and the device counters record the overlap.
func TestDeviceDepthOverlapsReads(t *testing.T) {
	const lat = 25 * time.Millisecond
	e := newEnv(t, Options{SleepOnRead: true, SimulatedReadLatency: lat, DeviceQueueDepth: 8})
	snap, pages := archiveScattered(t, e, 8)

	start := time.Now()
	var wg sync.WaitGroup
	for _, id := range pages {
		wg.Add(1)
		go func(id storage.PageID) {
			defer wg.Done()
			r, err := e.sys.OpenSnapshot(snap)
			if err != nil {
				t.Error(err)
				return
			}
			defer r.Close()
			if _, err := r.Get(id); err != nil {
				t.Errorf("Get(%d): %v", id, err)
			}
		}(id)
	}
	wg.Wait()
	wall := time.Since(start)

	// Serial service would cost 8 x 25ms = 200ms; at depth 8 the reads
	// overlap into roughly one latency. 150ms leaves room for scheduler
	// noise while still proving the overlap.
	if wall >= 150*time.Millisecond {
		t.Errorf("8 concurrent reads at depth 8 took %v, want well under the 200ms serial cost", wall)
	}
	st := e.sys.Stats()
	if st.DeviceReads < 8 {
		t.Errorf("DeviceReads = %d, want >= 8", st.DeviceReads)
	}
	if st.OverlappedReads == 0 {
		t.Error("OverlappedReads = 0, want overlap at depth 8")
	}
	if st.DeviceQueueDepth != 8 {
		t.Errorf("DeviceQueueDepth = %d, want 8", st.DeviceQueueDepth)
	}
}

// Depth 1 is the strictly serial device of paper-replication mode:
// concurrent reads queue behind each other and never overlap.
func TestDeviceDepthOneSerializes(t *testing.T) {
	const lat = 10 * time.Millisecond
	e := newEnv(t, Options{SleepOnRead: true, SimulatedReadLatency: lat, DeviceQueueDepth: 1})
	snap, pages := archiveScattered(t, e, 4)

	start := time.Now()
	var wg sync.WaitGroup
	for _, id := range pages {
		wg.Add(1)
		go func(id storage.PageID) {
			defer wg.Done()
			r, err := e.sys.OpenSnapshot(snap)
			if err != nil {
				t.Error(err)
				return
			}
			defer r.Close()
			if _, err := r.Get(id); err != nil {
				t.Errorf("Get(%d): %v", id, err)
			}
		}(id)
	}
	wg.Wait()
	wall := time.Since(start)

	if wall < 4*lat {
		t.Errorf("4 concurrent reads at depth 1 took %v, want >= %v (serial)", wall, 4*lat)
	}
	if st := e.sys.Stats(); st.OverlappedReads != 0 {
		t.Errorf("OverlappedReads = %d at depth 1, want 0", st.OverlappedReads)
	}
}

// The pool's queue is FIFO: at depth 1, commands complete in submission
// order.
func TestDeviceFIFOFairness(t *testing.T) {
	const lat = 20 * time.Millisecond
	e := newEnv(t, Options{SleepOnRead: true, SimulatedReadLatency: lat, DeviceQueueDepth: 1})
	archiveScattered(t, e, 3) // offsets 0..5 now exist

	const n = 6
	var (
		mu    sync.Mutex
		order []int
		wg    sync.WaitGroup
	)
	dones := make([]chan devResult, n)
	for i := range dones {
		dones[i] = make(chan devResult, 1)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res := <-dones[i]
			if res.err != nil {
				t.Errorf("command %d: %v", i, res.err)
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		}(i)
	}
	for i := 0; i < n; i++ {
		if err := e.sys.dev.submit(&devReq{off: int64(i), n: 1, done: dones[i]}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	wg.Wait()
	for i, got := range order {
		if got != i {
			t.Fatalf("completion order %v, want FIFO 0..%d", order, n-1)
		}
	}
}

// Busy time accumulates real service time: n commands at latency L
// must record at least n x L of device busy time, and each demand read
// is exactly one command.
func TestDeviceBusyAccounting(t *testing.T) {
	const lat = 5 * time.Millisecond
	e := newEnv(t, Options{SleepOnRead: true, SimulatedReadLatency: lat, DeviceQueueDepth: 2})
	snap, pages := archiveScattered(t, e, 4)

	r, err := e.sys.OpenSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for _, id := range pages {
		if _, err := r.Get(id); err != nil {
			t.Fatalf("Get(%d): %v", id, err)
		}
	}
	st := e.sys.Stats()
	if st.DeviceReads != 4 {
		t.Errorf("DeviceReads = %d, want 4", st.DeviceReads)
	}
	if got, want := time.Duration(st.DeviceBusyNS), 4*lat; got < want {
		t.Errorf("DeviceBusyNS = %v, want >= %v", got, want)
	}
	if st.OverlappedReads != 0 {
		t.Errorf("OverlappedReads = %d for sequential demand reads, want 0", st.OverlappedReads)
	}
	// The logical accounting is device-independent: four demand misses.
	if r.Counters.PagelogReads != 4 {
		t.Errorf("PagelogReads = %d, want 4", r.Counters.PagelogReads)
	}
}

// Closing a SnapshotSet with an async batch in flight must cancel the
// outstanding commands, drain the collector without leaking it, and
// leave the system healthy (Compact still works). Run under -race this
// also pins down that no collector writes into the cache after close.
func TestSnapshotSetCloseCancelsFetch(t *testing.T) {
	const lat = 10 * time.Millisecond
	e := newEnv(t, Options{SleepOnRead: true, SimulatedReadLatency: lat, DeviceQueueDepth: 1})
	snap, pages := archiveScattered(t, e, 16)

	set, err := e.sys.OpenSnapshotSet([]SnapshotID{snap})
	if err != nil {
		t.Fatal(err)
	}
	r, err := set.Open(snap)
	if err != nil {
		t.Fatal(err)
	}
	f, err := r.FetchBatch(pages, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f.Pages() != 16 || f.Runs() != 16 {
		t.Fatalf("fetch planned %d pages in %d runs, want 16 fragmented commands", f.Pages(), f.Runs())
	}
	// 16 commands x 10ms at depth 1 = 160ms of service; close a little
	// in so some commands completed and the rest are still queued.
	time.Sleep(25 * time.Millisecond)
	set.Close()

	fetched, err := f.Wait()
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if !f.Canceled() {
		t.Error("fetch not marked canceled after set close")
	}
	if fetched >= f.Pages() {
		t.Errorf("fetched %d of %d pages despite mid-flight close", fetched, f.Pages())
	}
	if _, err := e.sys.Compact(); err != nil {
		t.Fatalf("Compact after canceled fetch: %v", err)
	}
	// The surviving warmed pages must still be the correct pre-states.
	if got := readSnapPage(t, e.sys, snap, pages[0]); got != 1 {
		t.Errorf("page %d reads %d after canceled fetch, want pre-state 1", pages[0], got)
	}
}
