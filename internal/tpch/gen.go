// Package tpch is a self-contained, deterministic implementation of the
// TPC-H data generator (dbgen) and refresh functions, at configurable
// scale factors. The paper's evaluation (§5) builds its snapshot
// histories from a TPC-H database: the initial population comes from
// dbgen and the update workloads UW7.5/UW15/UW30/UW60 delete and insert
// a fixed number of Orders rows (plus their Lineitem rows) between
// consecutive snapshot declarations, using the TPC-H refresh-function
// scheme (new orders get fresh keys; deletions retire the oldest keys),
// which sweeps the table cyclically and yields the controlled
// "overwrite cycle" lengths the paper's analysis depends on.
package tpch

import (
	"fmt"
	"math/rand"

	"rql/internal/record"
)

// Base cardinalities at scale factor 1.0 (per the TPC-H specification).
const (
	baseCustomers = 150000
	baseOrders    = 1500000
	baseParts     = 200000
	baseSuppliers = 10000
	basePartSupp  = 800000
)

// Generator produces TPC-H rows deterministically for a given seed and
// scale factor.
type Generator struct {
	SF   float64
	rng  *rand.Rand
	next int64 // next order key to hand out
}

// NewGenerator creates a generator. Scale factor 0.01 yields 15,000
// orders (the default TPC-H SF 1 yields 1.5M).
func NewGenerator(sf float64, seed int64) *Generator {
	return &Generator{SF: sf, rng: rand.New(rand.NewSource(seed)), next: 1}
}

// Cardinalities for this scale factor.
func (g *Generator) Customers() int { return scaled(baseCustomers, g.SF) }
func (g *Generator) Orders() int    { return scaled(baseOrders, g.SF) }
func (g *Generator) Parts() int     { return scaled(baseParts, g.SF) }
func (g *Generator) Suppliers() int { return scaled(baseSuppliers, g.SF) }

func scaled(base int, sf float64) int {
	n := int(float64(base) * sf)
	if n < 1 {
		n = 1
	}
	return n
}

// Word pools (abbreviated versions of dbgen's grammar-based text).
var (
	segments    = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	priorities  = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	instructs   = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}
	shipmodes   = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
	types1      = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
	types2      = []string{"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"}
	types3      = []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}
	containers1 = []string{"SM", "LG", "MED", "JUMBO", "WRAP"}
	containers2 = []string{"CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"}
	nounPool    = []string{"packages", "requests", "accounts", "deposits", "foxes", "ideas",
		"theodolites", "pinto beans", "instructions", "dependencies", "excuses", "platelets"}
	verbPool = []string{"sleep", "haggle", "nag", "wake", "cajole", "dazzle", "detect",
		"integrate", "doze", "snooze", "engage", "boost"}
	adjPool = []string{"furious", "sly", "careful", "blithe", "quick", "fluffy", "slow",
		"quiet", "ruthless", "thin", "close", "dogged"}
	nationNames = []string{"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
		"FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN",
		"KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA", "SAUDI ARABIA",
		"VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES"}
	regionNames = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	// nationRegion maps each of the 25 nations to its region, per the
	// TPC-H specification's nation table.
	nationRegion = []int64{0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2, 4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 1}
)

func (g *Generator) pick(pool []string) string { return pool[g.rng.Intn(len(pool))] }

func (g *Generator) comment(maxWords int) string {
	n := 2 + g.rng.Intn(maxWords)
	out := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			out += " "
		}
		switch i % 3 {
		case 0:
			out += g.pick(adjPool)
		case 1:
			out += g.pick(nounPool)
		default:
			out += g.pick(verbPool)
		}
	}
	return out
}

// date renders a pseudo-random date in the TPC-H range [1992-01-01,
// 1998-08-02] as the TEXT form the schema stores.
func (g *Generator) date() string {
	day := g.rng.Intn(2405) // days in the range
	return dateFromOffset(day)
}

func dateFromOffset(day int) string {
	y, rem := 1992+day/365, day%365
	m := rem/31 + 1
	d := rem%31 + 1
	return fmt.Sprintf("%04d-%02d-%02d", y, m, d)
}

func (g *Generator) money(lo, hi float64) float64 {
	return float64(int64((lo+(hi-lo)*g.rng.Float64())*100)) / 100
}

// Region returns the region table rows.
func (g *Generator) Region() [][]record.Value {
	rows := make([][]record.Value, len(regionNames))
	for i, n := range regionNames {
		rows[i] = []record.Value{record.Int(int64(i)), record.Text(n), record.Text(g.comment(6))}
	}
	return rows
}

// Nation returns the nation table rows.
func (g *Generator) Nation() [][]record.Value {
	rows := make([][]record.Value, len(nationNames))
	for i, n := range nationNames {
		rows[i] = []record.Value{
			record.Int(int64(i)), record.Text(n), record.Int(nationRegion[i]), record.Text(g.comment(6)),
		}
	}
	return rows
}

// Supplier returns the supplier table rows.
func (g *Generator) Supplier() [][]record.Value {
	n := g.Suppliers()
	rows := make([][]record.Value, n)
	for i := 0; i < n; i++ {
		k := int64(i + 1)
		rows[i] = []record.Value{
			record.Int(k),
			record.Text(fmt.Sprintf("Supplier#%09d", k)),
			record.Text(g.comment(3)),
			record.Int(int64(g.rng.Intn(25))),
			record.Text(fmt.Sprintf("%02d-%03d-%03d-%04d", 10+g.rng.Intn(25), g.rng.Intn(1000), g.rng.Intn(1000), g.rng.Intn(10000))),
			record.Float(g.money(-999.99, 9999.99)),
			record.Text(g.comment(8)),
		}
	}
	return rows
}

// Customer returns the customer table rows.
func (g *Generator) Customer() [][]record.Value {
	n := g.Customers()
	rows := make([][]record.Value, n)
	for i := 0; i < n; i++ {
		k := int64(i + 1)
		rows[i] = []record.Value{
			record.Int(k),
			record.Text(fmt.Sprintf("Customer#%09d", k)),
			record.Text(g.comment(3)),
			record.Int(int64(g.rng.Intn(25))),
			record.Text(fmt.Sprintf("%02d-%03d-%03d-%04d", 10+g.rng.Intn(25), g.rng.Intn(1000), g.rng.Intn(1000), g.rng.Intn(10000))),
			record.Float(g.money(-999.99, 9999.99)),
			record.Text(g.pick(segments)),
			record.Text(g.comment(10)),
		}
	}
	return rows
}

// Part returns the part table rows. p_type draws from the full 150
// TPC-H type strings, so predicates like p_type = 'STANDARD POLISHED
// TIN' (the paper's Qq_cpu) select ~1/150 of parts.
func (g *Generator) Part() [][]record.Value {
	n := g.Parts()
	rows := make([][]record.Value, n)
	for i := 0; i < n; i++ {
		k := int64(i + 1)
		ptype := g.pick(types1) + " " + g.pick(types2) + " " + g.pick(types3)
		rows[i] = []record.Value{
			record.Int(k),
			record.Text(g.pick(adjPool) + " " + g.pick(nounPool)),
			record.Text(fmt.Sprintf("Manufacturer#%d", 1+g.rng.Intn(5))),
			record.Text(fmt.Sprintf("Brand#%d%d", 1+g.rng.Intn(5), 1+g.rng.Intn(5))),
			record.Text(ptype),
			record.Int(int64(1 + g.rng.Intn(50))),
			record.Text(g.pick(containers1) + " " + g.pick(containers2)),
			record.Float(g.money(900, 2000)),
			record.Text(g.comment(5)),
		}
	}
	return rows
}

// PartSupp returns the partsupp table rows (4 suppliers per part).
func (g *Generator) PartSupp() [][]record.Value {
	parts, sups := g.Parts(), g.Suppliers()
	rows := make([][]record.Value, 0, parts*4)
	for p := 1; p <= parts; p++ {
		for s := 0; s < 4; s++ {
			rows = append(rows, []record.Value{
				record.Int(int64(p)),
				record.Int(int64((p+s*(sups/4+1))%sups + 1)),
				record.Int(int64(1 + g.rng.Intn(9999))),
				record.Float(g.money(1, 1000)),
				record.Text(g.comment(8)),
			})
		}
	}
	return rows
}

// Order couples an orders row with its lineitem rows.
type Order struct {
	Row       []record.Value
	Lineitems [][]record.Value
}

// NextOrders generates n new orders with fresh, increasing order keys
// (the refresh-function RF1 stream; the initial population uses the
// same stream starting at key 1).
func (g *Generator) NextOrders(n int) []Order {
	out := make([]Order, n)
	customers := g.Customers()
	parts, sups := g.Parts(), g.Suppliers()
	for i := range out {
		key := g.next
		g.next++
		nl := 1 + g.rng.Intn(7)
		status := "O"
		if g.rng.Intn(2) == 0 {
			status = "F"
		}
		total := 0.0
		items := make([][]record.Value, nl)
		date := g.date()
		for l := 0; l < nl; l++ {
			qty := float64(1 + g.rng.Intn(50))
			price := g.money(900, 10000)
			ext := float64(int64(qty*price*100)) / 100
			total += ext
			items[l] = []record.Value{
				record.Int(key),
				record.Int(int64(1 + g.rng.Intn(parts))),
				record.Int(int64(1 + g.rng.Intn(sups))),
				record.Int(int64(l + 1)),
				record.Float(qty),
				record.Float(ext),
				record.Float(float64(g.rng.Intn(11)) / 100),
				record.Float(float64(g.rng.Intn(9)) / 100),
				record.Text(g.pick([]string{"A", "N", "R"})),
				record.Text(status),
				record.Text(g.date()),
				record.Text(g.date()),
				record.Text(g.date()),
				record.Text(g.pick(instructs)),
				record.Text(g.pick(shipmodes)),
				record.Text(g.comment(6)),
			}
		}
		out[i] = Order{
			Row: []record.Value{
				record.Int(key),
				record.Int(int64(1 + g.rng.Intn(customers))),
				record.Text(status),
				record.Float(total),
				record.Text(date),
				record.Text(g.pick(priorities)),
				record.Text(fmt.Sprintf("Clerk#%09d", 1+g.rng.Intn(1000))),
				record.Int(0),
				record.Text(g.comment(8)),
			},
			Lineitems: items,
		}
	}
	return out
}
