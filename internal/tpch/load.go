package tpch

import (
	"fmt"
	"time"

	"rql/internal/core"
	"rql/internal/record"
	"rql/internal/sql"
)

// DDL is the TPC-H schema, without additional indices, mirroring the
// paper's dbgen-produced database ("without additional indices", §5).
var DDL = []string{
	`CREATE TABLE region (
		r_regionkey INTEGER, r_name TEXT, r_comment TEXT)`,
	`CREATE TABLE nation (
		n_nationkey INTEGER, n_name TEXT, n_regionkey INTEGER, n_comment TEXT)`,
	`CREATE TABLE supplier (
		s_suppkey INTEGER, s_name TEXT, s_address TEXT, s_nationkey INTEGER,
		s_phone TEXT, s_acctbal REAL, s_comment TEXT)`,
	`CREATE TABLE customer (
		c_custkey INTEGER, c_name TEXT, c_address TEXT, c_nationkey INTEGER,
		c_phone TEXT, c_acctbal REAL, c_mktsegment TEXT, c_comment TEXT)`,
	`CREATE TABLE part (
		p_partkey INTEGER, p_name TEXT, p_mfgr TEXT, p_brand TEXT, p_type TEXT,
		p_size INTEGER, p_container TEXT, p_retailprice REAL, p_comment TEXT)`,
	`CREATE TABLE partsupp (
		ps_partkey INTEGER, ps_suppkey INTEGER, ps_availqty INTEGER,
		ps_supplycost REAL, ps_comment TEXT)`,
	`CREATE TABLE orders (
		o_orderkey INTEGER, o_custkey INTEGER, o_orderstatus TEXT,
		o_totalprice REAL, o_orderdate TEXT, o_orderpriority TEXT,
		o_clerk TEXT, o_shippriority INTEGER, o_comment TEXT)`,
	`CREATE TABLE lineitem (
		l_orderkey INTEGER, l_partkey INTEGER, l_suppkey INTEGER,
		l_linenumber INTEGER, l_quantity REAL, l_extendedprice REAL,
		l_discount REAL, l_tax REAL, l_returnflag TEXT, l_linestatus TEXT,
		l_shipdate TEXT, l_commitdate TEXT, l_receiptdate TEXT,
		l_shipinstruct TEXT, l_shipmode TEXT, l_comment TEXT)`,
}

// Load creates the schema and populates all eight tables at the
// generator's scale factor. It returns the key range of the loaded
// orders.
func Load(conn *sql.Conn, g *Generator) (minKey, maxKey int64, err error) {
	for _, ddl := range DDL {
		if err := conn.Exec(ddl, nil); err != nil {
			return 0, 0, err
		}
	}
	if err := conn.BulkInsert("region", g.Region()); err != nil {
		return 0, 0, err
	}
	if err := conn.BulkInsert("nation", g.Nation()); err != nil {
		return 0, 0, err
	}
	if err := conn.BulkInsert("supplier", g.Supplier()); err != nil {
		return 0, 0, err
	}
	if err := conn.BulkInsert("customer", g.Customer()); err != nil {
		return 0, 0, err
	}
	if err := conn.BulkInsert("part", g.Part()); err != nil {
		return 0, 0, err
	}
	if err := conn.BulkInsert("partsupp", g.PartSupp()); err != nil {
		return 0, 0, err
	}
	orders := g.NextOrders(g.Orders())
	if err := insertOrders(conn, orders); err != nil {
		return 0, 0, err
	}
	return orders[0].Row[0].Int(), orders[len(orders)-1].Row[0].Int(), nil
}

func insertOrders(conn *sql.Conn, orders []Order) error {
	oRows := make([][]record.Value, 0, len(orders))
	var lRows [][]record.Value
	for _, o := range orders {
		oRows = append(oRows, o.Row)
		lRows = append(lRows, o.Lineitems...)
	}
	if err := conn.BulkInsert("orders", oRows); err != nil {
		return err
	}
	return conn.BulkInsert("lineitem", lRows)
}

// Workload drives the paper's update workloads: between consecutive
// snapshot declarations it deletes the oldest OrdersPerSnapshot orders
// (with their lineitems, the RF2 refresh) and inserts as many new ones
// (RF1), then declares a snapshot and records it in SnapIds. The
// deletion front advances through the key space, so the database is
// fully overwritten every Orders/OrdersPerSnapshot snapshots — the
// paper's "overwrite cycle" (UW30 overwrites every 50 snapshots, UW15
// every 100).
type Workload struct {
	Conn              *sql.Conn
	Gen               *Generator
	OrdersPerSnapshot int

	minKey int64 // oldest live order key
	clock  time.Time
}

// NewWorkload wraps a loaded database.
func NewWorkload(conn *sql.Conn, g *Generator, minKey int64, ordersPerSnapshot int) *Workload {
	return &Workload{
		Conn:              conn,
		Gen:               g,
		OrdersPerSnapshot: ordersPerSnapshot,
		minKey:            minKey,
		clock:             time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC),
	}
}

// Step performs one refresh cycle and declares one snapshot, returning
// its id.
func (w *Workload) Step() (uint64, error) {
	cut := w.minKey + int64(w.OrdersPerSnapshot)
	if err := w.Conn.Exec(`BEGIN`, nil); err != nil {
		return 0, err
	}
	abort := func(err error) (uint64, error) {
		w.Conn.Rollback()
		return 0, err
	}
	if err := w.Conn.Exec(`DELETE FROM lineitem WHERE l_orderkey < ?`, nil, record.Int(cut)); err != nil {
		return abort(err)
	}
	if err := w.Conn.Exec(`DELETE FROM orders WHERE o_orderkey < ?`, nil, record.Int(cut)); err != nil {
		return abort(err)
	}
	if err := insertOrders(w.Conn, w.Gen.NextOrders(w.OrdersPerSnapshot)); err != nil {
		return abort(err)
	}
	id, err := w.Conn.CommitWithSnapshot()
	if err != nil {
		return 0, err
	}
	w.minKey = cut
	w.clock = w.clock.Add(24 * time.Hour)
	if err := core.RecordSnapshot(w.Conn, id, w.clock, fmt.Sprintf("refresh-%d", id)); err != nil {
		return 0, err
	}
	return id, nil
}

// Run performs n refresh/snapshot steps.
func (w *Workload) Run(n int) error {
	for i := 0; i < n; i++ {
		if _, err := w.Step(); err != nil {
			return fmt.Errorf("tpch: refresh step %d: %w", i, err)
		}
	}
	return nil
}

// QuietStep declares one snapshot without applying a refresh — the
// periodic-snapshot idiom where the schedule fires whether or not the
// data changed. Quiet snapshots have empty page deltas.
func (w *Workload) QuietStep() (uint64, error) {
	if err := w.Conn.Exec(`BEGIN`, nil); err != nil {
		return 0, err
	}
	id, err := w.Conn.CommitWithSnapshot()
	if err != nil {
		w.Conn.Rollback()
		return 0, err
	}
	w.clock = w.clock.Add(24 * time.Hour)
	if err := core.RecordSnapshot(w.Conn, id, w.clock, fmt.Sprintf("quiet-%d", id)); err != nil {
		return 0, err
	}
	return id, nil
}
