package tpch

import (
	"strings"
	"testing"

	"rql/internal/core"
	"rql/internal/record"
	"rql/internal/sql"
)

func loadTiny(t *testing.T, ordersPerSnap int) (*sql.DB, *sql.Conn, *Workload) {
	t.Helper()
	db, err := sql.Open(sql.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	core.Attach(db)
	conn := db.Conn()
	g := NewGenerator(0.001, 42) // 1500 orders
	minKey, _, err := Load(conn, g)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.EnsureSnapIds(conn); err != nil {
		t.Fatal(err)
	}
	return db, conn, NewWorkload(conn, g, minKey, ordersPerSnap)
}

func count(t *testing.T, c *sql.Conn, sqlText string) int64 {
	t.Helper()
	rows, err := c.Query(sqlText)
	if err != nil {
		t.Fatalf("Query(%q): %v", sqlText, err)
	}
	return rows.Rows[0][0].Int()
}

func TestGeneratorDeterminism(t *testing.T) {
	a := NewGenerator(0.001, 7)
	b := NewGenerator(0.001, 7)
	oa := a.NextOrders(10)
	ob := b.NextOrders(10)
	for i := range oa {
		for j := range oa[i].Row {
			if record.Compare(oa[i].Row[j], ob[i].Row[j]) != 0 {
				t.Fatalf("order %d field %d differs", i, j)
			}
		}
	}
	c := NewGenerator(0.001, 8)
	oc := c.NextOrders(10)
	same := true
	for j := range oa[0].Row {
		if record.Compare(oa[0].Row[j], oc[0].Row[j]) != 0 {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical rows")
	}
}

func TestCardinalities(t *testing.T) {
	g := NewGenerator(0.001, 1)
	if g.Orders() != 1500 || g.Customers() != 150 || g.Parts() != 200 || g.Suppliers() != 10 {
		t.Errorf("cardinalities: %d %d %d %d", g.Orders(), g.Customers(), g.Parts(), g.Suppliers())
	}
	if len(g.Nation()) != 25 || len(g.Region()) != 5 {
		t.Error("fixed tables wrong size")
	}
	if got := len(g.PartSupp()); got != g.Parts()*4 {
		t.Errorf("partsupp = %d", got)
	}
}

func TestLoadPopulatesAllTables(t *testing.T) {
	_, conn, _ := loadTiny(t, 30)
	for table, want := range map[string]int64{
		"region": 5, "nation": 25, "supplier": 10, "customer": 150,
		"part": 200, "partsupp": 800, "orders": 1500,
	} {
		if got := count(t, conn, "SELECT COUNT(*) FROM "+table); got != want {
			t.Errorf("%s: %d rows, want %d", table, got, want)
		}
	}
	// ~4 lineitems per order on average.
	li := count(t, conn, "SELECT COUNT(*) FROM lineitem")
	if li < 3000 || li > 9000 {
		t.Errorf("lineitem count %d out of plausible range", li)
	}
	// The paper's Qq_cpu p_type exists.
	if got := count(t, conn,
		`SELECT COUNT(*) FROM part WHERE p_type = 'STANDARD POLISHED TIN'`); got == 0 {
		t.Skip("no STANDARD POLISHED TIN at this tiny scale (acceptable)")
	}
}

func TestWorkloadSlidingWindow(t *testing.T) {
	_, conn, w := loadTiny(t, 30)
	before := count(t, conn, "SELECT COUNT(*) FROM orders")
	if err := w.Run(5); err != nil {
		t.Fatal(err)
	}
	after := count(t, conn, "SELECT COUNT(*) FROM orders")
	if before != after {
		t.Errorf("window size changed: %d -> %d", before, after)
	}
	// The oldest keys are gone, new keys appended.
	minKey := count(t, conn, "SELECT MIN(o_orderkey) FROM orders")
	if minKey != 1+5*30 {
		t.Errorf("min order key %d, want %d", minKey, 1+5*30)
	}
	// Lineitems follow their orders.
	if got := count(t, conn,
		"SELECT COUNT(*) FROM lineitem WHERE l_orderkey < 151"); got != 0 {
		t.Errorf("%d orphaned lineitems", got)
	}
	// Five snapshots declared and recorded.
	if got := count(t, conn, "SELECT COUNT(*) FROM SnapIds"); got != 5 {
		t.Errorf("SnapIds has %d rows", got)
	}
}

func TestSnapshotsSeeHistoricalWindows(t *testing.T) {
	db, conn, w := loadTiny(t, 30)
	if err := w.Run(3); err != nil {
		t.Fatal(err)
	}
	db.Retro().ResetCache()
	// Snapshot 1: window was [31, 1530] after the first refresh.
	rows, err := conn.Query(`SELECT AS OF 1 MIN(o_orderkey), MAX(o_orderkey) FROM orders`)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := rows.Rows[0][0].Int(), rows.Rows[0][1].Int()
	if lo != 31 || hi != 1530 {
		t.Errorf("snapshot 1 window [%d,%d], want [31,1530]", lo, hi)
	}
	// Snapshot 3 differs from snapshot 1.
	rows, err = conn.Query(`SELECT AS OF 3 MIN(o_orderkey) FROM orders`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Rows[0][0].Int() != 91 {
		t.Errorf("snapshot 3 min key %d, want 91", rows.Rows[0][0].Int())
	}
}

// The full RQL-over-TPC-H integration: the paper's §5.3 example query.
func TestRQLOverTPCH(t *testing.T) {
	db, conn, w := loadTiny(t, 30)
	r := core.Attach(db)
	if err := w.Run(4); err != nil {
		t.Fatal(err)
	}
	stats, err := r.AggregateDataInTable(conn,
		`SELECT snap_id FROM SnapIds`,
		`SELECT o_custkey, COUNT(*) AS cn, AVG(o_totalprice) AS av FROM orders GROUP BY o_custkey`,
		"Result", "(cn,MAX)")
	if err != nil {
		t.Fatal(err)
	}
	if stats.ResultRows == 0 {
		t.Fatal("empty result")
	}
	// Cross-check against CollateData + SQL on a fresh result table.
	if _, err := r.CollateData(conn,
		`SELECT snap_id FROM SnapIds`,
		`SELECT o_custkey, COUNT(*) AS cn, AVG(o_totalprice) AS av FROM orders GROUP BY o_custkey`,
		"CollResult"); err != nil {
		t.Fatal(err)
	}
	a, err := conn.Query(`SELECT o_custkey, MAX(cn) FROM Result GROUP BY o_custkey ORDER BY o_custkey`)
	if err != nil {
		t.Fatal(err)
	}
	b, err := conn.Query(`SELECT o_custkey, MAX(cn) FROM CollResult GROUP BY o_custkey ORDER BY o_custkey`)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(a.Rows), len(b.Rows))
	}
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if record.Compare(a.Rows[i][j], b.Rows[i][j]) != 0 {
				t.Fatalf("row %d differs: %v vs %v", i, a.Rows[i], b.Rows[i])
			}
		}
	}
}

func TestDates(t *testing.T) {
	g := NewGenerator(0.001, 3)
	for i := 0; i < 100; i++ {
		d := g.date()
		if len(d) != 10 || !strings.HasPrefix(d, "199") {
			t.Fatalf("bad date %q", d)
		}
	}
}
