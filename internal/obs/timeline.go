package obs

import (
	"sync"
	"time"
)

// DefaultTimelinePoints is the number of timeline samples retained.
const DefaultTimelinePoints = 120

// Point is one telemetry sample: per-second rates for cumulative
// counters (computed from consecutive deltas) and raw gauge values,
// all keyed by metric name. The JSON shape is what /timeline serves
// and what rqlshell's .top renders.
type Point struct {
	When     time.Time          `json:"when"`
	Interval time.Duration      `json:"interval_ns"`
	Rates    map[string]float64 `json:"rates"`
	Gauges   map[string]float64 `json:"gauges"`
}

// Timeline samples a pair of counter/gauge maps on a fixed period and
// retains the resulting points in a ring. Counters are converted to
// per-second rates between consecutive samples; a counter that moves
// backwards (stats reset) re-baselines with a zero rate rather than
// reporting a huge negative one.
type Timeline struct {
	period time.Duration
	sample func() (counters map[string]uint64, gauges map[string]float64)

	mu     sync.Mutex
	ring   []Point
	next   uint64
	prev   map[string]uint64
	prevAt time.Time

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewTimeline builds a sampler that calls sample every period and
// keeps the most recent size points. It does not start sampling until
// Start is called. period <= 0 defaults to one second, size < 1 to
// DefaultTimelinePoints.
func NewTimeline(period time.Duration, size int, sample func() (map[string]uint64, map[string]float64)) *Timeline {
	if period <= 0 {
		period = time.Second
	}
	if size < 1 {
		size = DefaultTimelinePoints
	}
	return &Timeline{
		period: period,
		sample: sample,
		ring:   make([]Point, size),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
}

// Period returns the sampling period.
func (t *Timeline) Period() time.Duration { return t.period }

// Start begins background sampling. The first tick only establishes
// the rate baseline; points appear from the second tick on.
func (t *Timeline) Start() {
	go func() {
		defer close(t.done)
		ticker := time.NewTicker(t.period)
		defer ticker.Stop()
		t.tick() // baseline immediately, not a period later
		for {
			select {
			case <-t.stop:
				return
			case <-ticker.C:
				t.tick()
			}
		}
	}()
}

// Stop halts sampling and waits for the sampler goroutine to exit.
// Safe to call more than once; a Timeline cannot be restarted.
func (t *Timeline) Stop() {
	t.stopOnce.Do(func() { close(t.stop) })
	<-t.done
}

func (t *Timeline) tick() {
	counters, gauges := t.sample()
	now := time.Now()

	t.mu.Lock()
	defer t.mu.Unlock()
	if t.prev != nil {
		dt := now.Sub(t.prevAt)
		if dt <= 0 {
			dt = t.period
		}
		rates := make(map[string]float64, len(counters))
		for k, v := range counters {
			prev, ok := t.prev[k]
			if !ok || v < prev {
				rates[k] = 0
				continue
			}
			rates[k] = float64(v-prev) / dt.Seconds()
		}
		t.ring[t.next%uint64(len(t.ring))] = Point{
			When:     now,
			Interval: dt,
			Rates:    rates,
			Gauges:   gauges,
		}
		t.next++
	}
	t.prev = counters
	t.prevAt = now
}

// Points returns the retained points, oldest first.
func (t *Timeline) Points() []Point {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.next
	size := uint64(len(t.ring))
	if n > size {
		n = size
	}
	out := make([]Point, 0, n)
	start := t.next - n
	for i := uint64(0); i < n; i++ {
		out = append(out, t.ring[(start+i)%size])
	}
	return out
}
