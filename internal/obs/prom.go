package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file is a minimal, dependency-free Prometheus text-exposition
// encoder. Metric families are assembled by the caller (the server owns
// its counters; obs owns none), and WriteMetrics renders them in the
// version 0.0.4 text format: `# HELP` / `# TYPE` headers, escaped
// `name{label="value"}` sample lines, and cumulative
// `_bucket`/`_sum`/`_count` triples for histograms.
//
// ValidateExposition is the matching checker: it re-parses an
// exposition and rejects malformed names, labels, values, and
// non-cumulative histograms. Tests scrape /metrics through it so the
// exporter cannot silently regress into the ad-hoc format it replaced.

// MetricType selects the exposition TYPE of a family.
type MetricType int

const (
	Counter MetricType = iota
	Gauge
	HistogramType
)

func (t MetricType) String() string {
	switch t {
	case Counter:
		return "counter"
	case Gauge:
		return "gauge"
	case HistogramType:
		return "histogram"
	}
	return "untyped"
}

// Label is one name="value" pair on a sample.
type Label struct {
	Name  string
	Value string
}

// Sample is one counter or gauge sample within a family.
type Sample struct {
	Labels []Label
	Value  float64
}

// HistogramSample is one histogram within a family. Counts are the
// per-bucket (disjoint) observation counts — Counts[i] observed values
// <= Bounds[i], and the final element (len(Bounds)) is the overflow
// bucket. The encoder accumulates them into the cumulative `le` series
// Prometheus expects and derives `_count` as the total.
type HistogramSample struct {
	Labels []Label
	Bounds []float64 // upper bounds, ascending, excluding +Inf
	Counts []uint64  // len(Bounds)+1; last is the +Inf bucket
	Sum    float64
}

// MetricFamily is one named metric with all its samples.
type MetricFamily struct {
	Name       string
	Help       string
	Type       MetricType
	Samples    []Sample          // counter / gauge families
	Histograms []HistogramSample // histogram families
}

// WriteMetrics renders families in the Prometheus text format.
func WriteMetrics(w io.Writer, fams []MetricFamily) error {
	var b strings.Builder
	for _, f := range fams {
		if !validMetricName(f.Name) {
			return fmt.Errorf("obs: invalid metric name %q", f.Name)
		}
		if f.Help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.Name, escapeHelp(f.Help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.Name, f.Type)
		if f.Type == HistogramType {
			for _, h := range f.Histograms {
				if err := writeHistogram(&b, f.Name, h); err != nil {
					return err
				}
			}
		} else {
			for _, s := range f.Samples {
				if err := writeSample(&b, f.Name, s.Labels, s.Value); err != nil {
					return err
				}
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeHistogram(b *strings.Builder, name string, h HistogramSample) error {
	if len(h.Counts) != len(h.Bounds)+1 {
		return fmt.Errorf("obs: histogram %s: %d counts for %d bounds", name, len(h.Counts), len(h.Bounds))
	}
	cum := uint64(0)
	for i, bound := range h.Bounds {
		cum += h.Counts[i]
		labels := append(append([]Label(nil), h.Labels...), Label{"le", formatFloat(bound)})
		if err := writeSample(b, name+"_bucket", labels, float64(cum)); err != nil {
			return err
		}
	}
	cum += h.Counts[len(h.Bounds)]
	labels := append(append([]Label(nil), h.Labels...), Label{"le", "+Inf"})
	if err := writeSample(b, name+"_bucket", labels, float64(cum)); err != nil {
		return err
	}
	if err := writeSample(b, name+"_sum", h.Labels, h.Sum); err != nil {
		return err
	}
	return writeSample(b, name+"_count", h.Labels, float64(cum))
}

func writeSample(b *strings.Builder, name string, labels []Label, v float64) error {
	b.WriteString(name)
	if len(labels) > 0 {
		b.WriteByte('{')
		for i, l := range labels {
			if !validLabelName(l.Name) {
				return fmt.Errorf("obs: invalid label name %q on %s", l.Name, name)
			}
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l.Name)
			b.WriteString(`="`)
			b.WriteString(escapeLabelValue(l.Value))
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte('\n')
	return nil
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// ValidateExposition parses a text exposition and returns an error on
// the first format violation: bad metric/label names, unescaped label
// values, unparsable sample values, TYPE lines after samples of the
// same family, histograms with non-monotonic buckets or a missing +Inf
// bucket, or `_count` disagreeing with the +Inf bucket.
func ValidateExposition(data string) error {
	type histState struct {
		lastLe    float64
		lastCum   float64
		sawInf    bool
		infCum    float64
		count     float64
		sawCount  bool
		sawSample bool
	}
	types := map[string]string{}
	seenSamples := map[string]bool{}
	hists := map[string]*histState{} // keyed by name + label signature (minus le)

	lines := strings.Split(data, "\n")
	for ln, line := range lines {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return fmt.Errorf("line %d: malformed comment %q", lineNo, line)
			}
			name := fields[2]
			if !validMetricName(name) {
				return fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return fmt.Errorf("line %d: TYPE missing type", lineNo)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown type %q", lineNo, fields[3])
				}
				if seenSamples[name] {
					return fmt.Errorf("line %d: TYPE for %s after its samples", lineNo, name)
				}
				types[name] = fields[3]
			}
			continue
		}

		name, labels, value, err := parseSampleLine(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		base := name
		isBucket := false
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, suffix)
			if trimmed != name && types[trimmed] == "histogram" {
				base = trimmed
				isBucket = suffix == "_bucket"
				if suffix == "_count" {
					key := base + "|" + labelSig(labels, "le")
					st := hists[key]
					if st == nil {
						st = &histState{}
						hists[key] = st
					}
					st.count = value
					st.sawCount = true
				}
				break
			}
		}
		if _, typed := types[base]; !typed {
			return fmt.Errorf("line %d: sample %s has no TYPE", lineNo, base)
		}
		seenSamples[base] = true

		if isBucket {
			key := base + "|" + labelSig(labels, "le")
			st := hists[key]
			if st == nil {
				st = &histState{lastLe: math.Inf(-1)}
				hists[key] = st
			}
			le := ""
			for _, l := range labels {
				if l.Name == "le" {
					le = l.Value
				}
			}
			if le == "" {
				return fmt.Errorf("line %d: histogram bucket without le label", lineNo)
			}
			var bound float64
			if le == "+Inf" {
				bound = math.Inf(+1)
				st.sawInf = true
				st.infCum = value
			} else {
				bound, err = strconv.ParseFloat(le, 64)
				if err != nil {
					return fmt.Errorf("line %d: bad le value %q", lineNo, le)
				}
			}
			if st.sawSample && bound <= st.lastLe {
				return fmt.Errorf("line %d: histogram %s buckets not ascending", lineNo, base)
			}
			if st.sawSample && value < st.lastCum {
				return fmt.Errorf("line %d: histogram %s buckets not cumulative", lineNo, base)
			}
			st.lastLe, st.lastCum, st.sawSample = bound, value, true
		}
	}
	for key, st := range hists {
		base := strings.SplitN(key, "|", 2)[0]
		if st.sawSample && !st.sawInf {
			return fmt.Errorf("histogram %s missing +Inf bucket", base)
		}
		if st.sawSample && st.sawCount && st.count != st.infCum {
			return fmt.Errorf("histogram %s: _count %v != +Inf bucket %v", base, st.count, st.infCum)
		}
	}
	return nil
}

// parseSampleLine splits `name{l="v",...} value` into parts, undoing
// label-value escapes.
func parseSampleLine(line string) (name string, labels []Label, value float64, err error) {
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		return "", nil, 0, fmt.Errorf("malformed sample %q", line)
	}
	name = rest[:i]
	if !validMetricName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	rest = rest[i:]
	if rest[0] == '{' {
		rest = rest[1:]
		for {
			rest = strings.TrimLeft(rest, ",")
			if rest == "" {
				return "", nil, 0, fmt.Errorf("unterminated label set in %q", line)
			}
			if rest[0] == '}' {
				rest = rest[1:]
				break
			}
			eq := strings.Index(rest, "=")
			if eq < 0 {
				return "", nil, 0, fmt.Errorf("malformed label in %q", line)
			}
			lname := rest[:eq]
			if !validLabelName(lname) {
				return "", nil, 0, fmt.Errorf("invalid label name %q", lname)
			}
			rest = rest[eq+1:]
			if rest == "" || rest[0] != '"' {
				return "", nil, 0, fmt.Errorf("unquoted label value in %q", line)
			}
			rest = rest[1:]
			var val strings.Builder
			closed := false
			for len(rest) > 0 {
				c := rest[0]
				if c == '\\' {
					if len(rest) < 2 {
						return "", nil, 0, fmt.Errorf("dangling escape in %q", line)
					}
					switch rest[1] {
					case '\\':
						val.WriteByte('\\')
					case '"':
						val.WriteByte('"')
					case 'n':
						val.WriteByte('\n')
					default:
						return "", nil, 0, fmt.Errorf("bad escape \\%c in %q", rest[1], line)
					}
					rest = rest[2:]
					continue
				}
				if c == '"' {
					rest = rest[1:]
					closed = true
					break
				}
				val.WriteByte(c)
				rest = rest[1:]
			}
			if !closed {
				return "", nil, 0, fmt.Errorf("unterminated label value in %q", line)
			}
			labels = append(labels, Label{Name: lname, Value: val.String()})
		}
	}
	rest = strings.TrimLeft(rest, " ")
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // optional timestamp
		return "", nil, 0, fmt.Errorf("malformed value in %q", line)
	}
	value, err = parseValue(fields[0])
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value %q: %v", fields[0], err)
	}
	return name, labels, value, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(+1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// labelSig renders a label set minus one excluded name as a canonical
// string, so histogram series with the same dimensions group together.
func labelSig(labels []Label, exclude string) string {
	kept := make([]string, 0, len(labels))
	for _, l := range labels {
		if l.Name != exclude {
			kept = append(kept, l.Name+"="+l.Value)
		}
	}
	sort.Strings(kept)
	return strings.Join(kept, ",")
}
