package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// traceEvent is one Chrome trace-event ("X" = complete event). The
// format is understood by Perfetto and chrome://tracing: timestamps
// and durations are microseconds, pid/tid select the track.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  uint64         `json:"pid"`
	Tid  uint64         `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteTraceEvents writes spans as Chrome trace-event JSON
// ({"traceEvents": [...]}). Each trace gets its own track (tid) so
// concurrent requests render as parallel lanes in Perfetto.
func WriteTraceEvents(w io.Writer, spans []Span) error {
	events := make([]traceEvent, 0, len(spans))
	var epoch time.Time
	for _, s := range spans {
		if epoch.IsZero() || s.Start.Before(epoch) {
			epoch = s.Start
		}
	}
	for _, s := range spans {
		args := map[string]any{
			"span_id":   s.ID,
			"parent_id": s.Parent,
			"trace_id":  s.Trace,
		}
		for _, a := range s.Attrs {
			if a.IsStr {
				args[a.Key] = a.Str
			} else {
				args[a.Key] = a.Int
			}
		}
		events = append(events, traceEvent{
			Name: s.Name,
			Cat:  "rql",
			Ph:   "X",
			Ts:   float64(s.Start.Sub(epoch).Nanoseconds()) / 1e3,
			Dur:  float64(s.Duration.Nanoseconds()) / 1e3,
			Pid:  1,
			Tid:  s.Trace,
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": events})
}

// NodeSpans groups one node's spans for stitched cluster export.
type NodeSpans struct {
	Node  string // display name: "primary", "replica 127.0.0.1:4091", ...
	Spans []Span
}

// WriteStitchedTraceEvents writes spans gathered from several nodes as
// ONE Chrome trace-event file: each node becomes its own process lane
// (pid + process_name metadata), each trace its own thread within the
// lane, so a propagated trace that spans primary and replicas renders
// as aligned rows in Perfetto. Span IDs may collide across nodes (each
// node mints its own); that is harmless here because lanes are keyed
// by pid/tid, and the real trace ID rides in args.
func WriteStitchedTraceEvents(w io.Writer, nodes []NodeSpans) error {
	var epoch time.Time
	for _, n := range nodes {
		for _, s := range n.Spans {
			if epoch.IsZero() || s.Start.Before(epoch) {
				epoch = s.Start
			}
		}
	}
	events := make([]traceEvent, 0, 64)
	for ni, n := range nodes {
		pid := uint64(ni + 1)
		events = append(events, traceEvent{
			Name: "process_name",
			Ph:   "M",
			Pid:  pid,
			Args: map[string]any{"name": n.Node},
		})
		for _, s := range n.Spans {
			args := map[string]any{
				"span_id":   s.ID,
				"parent_id": s.Parent,
				"trace_id":  s.Trace,
				"node":      n.Node,
			}
			for _, a := range s.Attrs {
				if a.IsStr {
					args[a.Key] = a.Str
				} else {
					args[a.Key] = a.Int
				}
			}
			events = append(events, traceEvent{
				Name: s.Name,
				Cat:  "rql",
				Ph:   "X",
				Ts:   float64(s.Start.Sub(epoch).Nanoseconds()) / 1e3,
				Dur:  float64(s.Duration.Nanoseconds()) / 1e3,
				Pid:  pid,
				Tid:  s.Trace,
				Args: args,
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": events})
}

// FormatTree renders spans as an indented tree, one line per span:
//
//	server.exec 12.3ms
//	  sql.exec 12.1ms sql="SELECT ..."
//	    rql.iteration 3.2ms snapshot=17 pagelog_reads=40
//
// Spans whose parent is absent from the slice are treated as roots.
// Ordering is by start time at every level.
func FormatTree(spans []Span) string {
	if len(spans) == 0 {
		return "(no spans)\n"
	}
	byID := make(map[uint64]int, len(spans))
	for i, s := range spans {
		byID[s.ID] = i
	}
	children := make(map[uint64][]int, len(spans))
	var roots []int
	for i, s := range spans {
		if _, ok := byID[s.Parent]; s.Parent != 0 && ok {
			children[s.Parent] = append(children[s.Parent], i)
		} else {
			roots = append(roots, i)
		}
	}
	byStart := func(idx []int) {
		sort.Slice(idx, func(a, b int) bool {
			return spans[idx[a]].Start.Before(spans[idx[b]].Start)
		})
	}
	byStart(roots)
	for _, c := range children {
		byStart(c)
	}

	var b strings.Builder
	var walk func(i, depth int)
	walk = func(i, depth int) {
		s := spans[i]
		b.WriteString(strings.Repeat("  ", depth))
		fmt.Fprintf(&b, "%s %s", s.Name, s.Duration.Round(time.Microsecond))
		for _, a := range s.Attrs {
			if a.IsStr {
				fmt.Fprintf(&b, " %s=%q", a.Key, a.Str)
			} else {
				fmt.Fprintf(&b, " %s=%d", a.Key, a.Int)
			}
		}
		b.WriteByte('\n')
		for _, c := range children[s.ID] {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
	return b.String()
}
