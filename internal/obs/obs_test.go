package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func reset(t *testing.T) {
	t.Helper()
	SetTracing(false)
	SetSampleRate(1)
	SetRingSize(0)
	SetSlowThreshold(0)
	ResetSlowLog()
	t.Cleanup(func() {
		SetTracing(false)
		SetSampleRate(1)
		SetRingSize(0)
		SetSlowThreshold(0)
		ResetSlowLog()
	})
}

func TestDisabledIsNil(t *testing.T) {
	reset(t)
	sp := StartSpan(nil, "root")
	if sp != nil {
		t.Fatalf("StartSpan with tracing off = %v, want nil", sp)
	}
	// Every method must tolerate the nil receiver.
	sp.SetInt("k", 1).SetStr("s", "v").Child("c").End()
	sp.EndAt(time.Second)
	Record(sp, "x", time.Now(), time.Second)
	if got := sp.TraceID(); got != 0 {
		t.Fatalf("nil TraceID = %d, want 0", got)
	}
	if n := len(Spans()); n != 0 {
		t.Fatalf("ring has %d spans, want 0", n)
	}
}

func TestSpanTree(t *testing.T) {
	reset(t)
	SetTracing(true)
	root := StartSpan(nil, "root")
	if root == nil {
		t.Fatal("StartSpan returned nil with tracing on")
	}
	child := root.Child("child").SetInt("pages", 7)
	grand := child.Child("grand").SetStr("dev", "pagelog")
	grand.End()
	child.End()
	root.End()

	spans := TraceSpans(root.TraceID())
	if len(spans) != 3 {
		t.Fatalf("trace has %d spans, want 3", len(spans))
	}
	byName := map[string]Span{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["child"].Parent != root.ID || byName["grand"].Parent != child.ID {
		t.Fatalf("parent links wrong: %+v", byName)
	}
	if byName["child"].Trace != root.Trace || byName["grand"].Trace != root.Trace {
		t.Fatal("trace IDs not inherited")
	}
	if LastTrace() != root.Trace {
		t.Fatalf("LastTrace = %d, want %d", LastTrace(), root.Trace)
	}
}

func TestRingWraps(t *testing.T) {
	reset(t)
	SetTracing(true)
	SetRingSize(4)
	for i := 0; i < 10; i++ {
		StartSpan(nil, "s").End()
	}
	if n := len(Spans()); n != 4 {
		t.Fatalf("ring retained %d, want 4", n)
	}
}

func TestRetroactiveRecord(t *testing.T) {
	reset(t)
	SetTracing(true)
	root := StartSpan(nil, "root")
	start := time.Now().Add(-50 * time.Millisecond)
	Record(root, "measured", start, 40*time.Millisecond, Attr{Key: "n", Int: 3})
	root.End()
	spans := TraceSpans(root.TraceID())
	var found bool
	for _, s := range spans {
		if s.Name == "measured" {
			found = true
			if s.Duration != 40*time.Millisecond {
				t.Fatalf("duration = %v", s.Duration)
			}
			if s.Parent != root.ID {
				t.Fatal("retroactive span not parented")
			}
		}
	}
	if !found {
		t.Fatal("retroactive span not recorded")
	}
}

func TestSampling(t *testing.T) {
	reset(t)
	SetTracing(true)
	SetSampleRate(4)
	recorded := 0
	for i := 0; i < 100; i++ {
		if sp := StartSpan(nil, "r"); sp != nil {
			recorded++
			sp.End()
		}
	}
	if recorded != 25 {
		t.Fatalf("sampled %d of 100 roots, want 25", recorded)
	}
	// Children of a sampled root are always kept.
	sp := StartSpan(nil, "r")
	for sp == nil {
		sp = StartSpan(nil, "r")
	}
	if c := sp.Child("c"); c == nil {
		t.Fatal("child of sampled root dropped")
	}
}

func TestWriteTraceEvents(t *testing.T) {
	reset(t)
	SetTracing(true)
	root := StartSpan(nil, "root").SetStr("sql", "SELECT 1")
	root.Child("child").SetInt("pages", 2).End()
	root.End()

	var buf bytes.Buffer
	if err := WriteTraceEvents(&buf, Spans()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("got %d events, want 2", len(doc.TraceEvents))
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("phase = %q, want X", ev.Ph)
		}
	}
}

func TestFormatTree(t *testing.T) {
	reset(t)
	SetTracing(true)
	root := StartSpan(nil, "server.exec")
	child := root.Child("sql.exec").SetStr("sql", "SELECT 1")
	child.Child("rql.iteration").SetInt("snapshot", 17).End()
	child.End()
	root.End()

	out := FormatTree(TraceSpans(root.TraceID()))
	for _, want := range []string{"server.exec", "  sql.exec", "    rql.iteration", `sql="SELECT 1"`, "snapshot=17"} {
		if !strings.Contains(out, want) {
			t.Fatalf("tree missing %q:\n%s", want, out)
		}
	}
}

func TestSlowLog(t *testing.T) {
	reset(t)
	ObserveQuery("SELECT slow", time.Second, 0, 1, SlowCost{})
	if n := len(SlowEntries()); n != 0 {
		t.Fatalf("disabled slow log recorded %d entries", n)
	}
	SetSlowThreshold(10 * time.Millisecond)
	ObserveQuery("SELECT fast", time.Millisecond, 0, 1, SlowCost{})
	ObserveQuery("SELECT slow", 20*time.Millisecond, 42, 9,
		SlowCost{Mechanism: "CollateData", PagelogReads: 40, PrunedIters: 3})
	entries := SlowEntries()
	if len(entries) != 1 {
		t.Fatalf("slow log has %d entries, want 1", len(entries))
	}
	e := entries[0]
	if e.SQL != "SELECT slow" || e.Trace != 42 || e.Rows != 9 {
		t.Fatalf("bad entry: %+v", e)
	}
	if e.Mechanism != "CollateData" || e.PagelogReads != 40 || e.PrunedIters != 3 {
		t.Fatalf("cost fields not recorded: %+v", e)
	}
}

func TestConcurrentEmission(t *testing.T) {
	reset(t)
	SetTracing(true)
	root := StartSpan(nil, "root")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sp := root.Child("work")
				sp.SetInt("i", int64(i))
				sp.End()
			}
		}()
	}
	wg.Wait()
	root.End()
	if n := len(TraceSpans(root.TraceID())); n != 8*200+1 {
		t.Fatalf("recorded %d spans, want %d", n, 8*200+1)
	}
}
