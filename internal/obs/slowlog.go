package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// SlowEntry is one statement batch that exceeded the slow threshold.
type SlowEntry struct {
	SQL      string
	Duration time.Duration
	Trace    uint64 // trace ID if the statement was traced, else 0
	When     time.Time
	Rows     int64

	// Retrospective cost, threaded from RunStats/ExecStats when the
	// statement ran a mechanism or touched the Pagelog. Zero values
	// mean "plain SQL" — nothing retrospective happened.
	Mechanism    string // mechanism name (CollateData, ...) or ""
	PagelogReads int64  // billed Pagelog reads
	PrunedIters  int64  // iterations skipped by delta pruning
}

// SlowCost carries the retrospective-cost fields of a SlowEntry into
// ObserveQuery without growing its positional signature every PR.
type SlowCost struct {
	Mechanism    string
	PagelogReads int64
	PrunedIters  int64
}

// slowLogSize bounds the retained slow-query entries.
const slowLogSize = 128

var (
	slowThreshold atomic.Int64 // nanoseconds; 0 disables the log

	slowMu   sync.Mutex
	slowRing [slowLogSize]SlowEntry
	slowNext uint64
)

// SetSlowThreshold records statements at or above d in the slow-query
// log. d == 0 disables the log. Independent of SetTracing: the slow
// log works even with span recording off.
func SetSlowThreshold(d time.Duration) {
	if d < 0 {
		d = 0
	}
	slowThreshold.Store(int64(d))
}

// SlowThreshold returns the current threshold (0 = disabled).
func SlowThreshold() time.Duration { return time.Duration(slowThreshold.Load()) }

// ObserveQuery records the statement in the slow log if its duration
// meets the threshold. Cheap when the log is disabled: one atomic load.
func ObserveQuery(sql string, d time.Duration, trace uint64, rows int64, cost SlowCost) {
	t := slowThreshold.Load()
	if t == 0 || int64(d) < t {
		return
	}
	slowMu.Lock()
	slowRing[slowNext%slowLogSize] = SlowEntry{
		SQL:          sql,
		Duration:     d,
		Trace:        trace,
		When:         time.Now(),
		Rows:         rows,
		Mechanism:    cost.Mechanism,
		PagelogReads: cost.PagelogReads,
		PrunedIters:  cost.PrunedIters,
	}
	slowNext++
	slowMu.Unlock()
}

// SlowEntries returns retained slow-query entries, oldest first.
func SlowEntries() []SlowEntry {
	slowMu.Lock()
	defer slowMu.Unlock()
	n := slowNext
	if n > slowLogSize {
		n = slowLogSize
	}
	out := make([]SlowEntry, 0, n)
	start := slowNext - n
	for i := uint64(0); i < n; i++ {
		out = append(out, slowRing[(start+i)%slowLogSize])
	}
	return out
}

// ResetSlowLog discards all slow-query entries.
func ResetSlowLog() {
	slowMu.Lock()
	slowRing = [slowLogSize]SlowEntry{}
	slowNext = 0
	slowMu.Unlock()
}
