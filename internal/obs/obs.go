// Package obs is a stdlib-only tracing and metrics subsystem.
//
// The design goal is near-zero cost when tracing is off and small,
// bounded cost when it is on:
//
//   - StartSpan / (*Span).Child return nil when tracing is disabled,
//     and every Span method is nil-receiver safe, so instrumented call
//     sites pay one atomic load and nothing else on the disabled path.
//   - Completed spans are copied into a fixed-size ring buffer; the
//     buffer never grows and old spans are overwritten, so a traced
//     server cannot leak memory no matter how long it runs.
//   - Spans are recorded only on coarse operations (request, statement,
//     iteration, SPT build, Pagelog fetch, device command, commit) —
//     never per page get — which keeps the enabled overhead within a
//     few percent even on cache-hot workloads.
//
// Trace IDs group spans into trees: every root span draws a fresh
// trace ID, and children inherit it. The recorder is a process-wide
// singleton because the instrumented layers (storage, retro, sql,
// core, server) share one process; per-DB recorders would force every
// layer API to carry a recorder handle for no practical gain.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one typed span attribute. Exactly one of Str or Int is
// meaningful, selected by IsStr; this avoids interface{} boxing on the
// record path.
type Attr struct {
	Key   string
	Str   string
	Int   int64
	IsStr bool
}

// Span is one timed operation. A Span is owned by the goroutine that
// started it until End; after End it is an immutable copy in the ring.
type Span struct {
	Trace    uint64 // trace tree ID; all spans in one request share it
	ID       uint64 // unique span ID
	Parent   uint64 // parent span ID, 0 for roots
	Name     string
	Start    time.Time
	Duration time.Duration
	Attrs    []Attr
}

// DefaultRingSize is the number of completed spans retained.
const DefaultRingSize = 8192

var (
	enabled atomic.Bool
	sample  atomic.Int64 // record 1 of every N roots; <=1 means all
	rootSeq atomic.Uint64
	idSeq   atomic.Uint64

	ringMu   sync.Mutex
	ring     []Span
	ringNext uint64 // total spans recorded since last resize/reset
)

func init() {
	ring = make([]Span, DefaultRingSize)
	sample.Store(1)
}

// SetTracing turns span recording on or off process-wide.
func SetTracing(on bool) { enabled.Store(on) }

// Enabled reports whether tracing is currently on.
func Enabled() bool { return enabled.Load() }

// SetSampleRate records only one of every n root spans (with their
// full subtree). n <= 1 restores full recording.
func SetSampleRate(n int) {
	if n < 1 {
		n = 1
	}
	sample.Store(int64(n))
}

// SetRingSize replaces the ring with an empty one of n slots.
// Intended for tests and tools; n < 1 restores the default size.
func SetRingSize(n int) {
	if n < 1 {
		n = DefaultRingSize
	}
	ringMu.Lock()
	ring = make([]Span, n)
	ringNext = 0
	ringMu.Unlock()
}

// ResetSpans discards all recorded spans.
func ResetSpans() {
	ringMu.Lock()
	for i := range ring {
		ring[i] = Span{}
	}
	ringNext = 0
	ringMu.Unlock()
}

// StartSpan begins a span. With a nil parent it starts a new trace
// root (subject to sampling); otherwise the child joins the parent's
// trace. Returns nil when tracing is disabled — all Span methods
// tolerate a nil receiver, so callers never need to branch.
func StartSpan(parent *Span, name string) *Span {
	if !enabled.Load() {
		return nil
	}
	if parent != nil {
		return parent.Child(name)
	}
	if n := sample.Load(); n > 1 && rootSeq.Add(1)%uint64(n) != 0 {
		return nil
	}
	return &Span{
		Trace: idSeq.Add(1),
		ID:    idSeq.Add(1),
		Start: time.Now(),
		Name:  name,
	}
}

// StartSpanInTrace begins a root span that joins an existing trace —
// the wire v8 propagation path, where the trace ID was minted by a
// remote client and arrived on the request frame. The caller already
// made the sampling decision (the frame carries a sampled flag), so
// remote roots are not subject to the local SetSampleRate gate; they
// are still dropped entirely while tracing is disabled. Client-minted
// IDs live in the upper half of the ID space (high bit set, see
// NewTraceID in the client), so they never collide with the local
// idSeq roots.
func StartSpanInTrace(trace uint64, name string) *Span {
	if !enabled.Load() || trace == 0 {
		return nil
	}
	return &Span{
		Trace: trace,
		ID:    idSeq.Add(1),
		Start: time.Now(),
		Name:  name,
	}
}

// Child begins a sub-span of s. Nil-safe: a nil parent yields a nil
// child, so an untraced operation never sprouts orphan spans.
func (s *Span) Child(name string) *Span {
	if s == nil || !enabled.Load() {
		return nil
	}
	return &Span{
		Trace:  s.Trace,
		ID:     idSeq.Add(1),
		Parent: s.ID,
		Start:  time.Now(),
		Name:   name,
	}
}

// SetInt attaches an integer attribute. Nil-safe.
func (s *Span) SetInt(key string, v int64) *Span {
	if s != nil {
		s.Attrs = append(s.Attrs, Attr{Key: key, Int: v})
	}
	return s
}

// SetStr attaches a string attribute. Nil-safe.
func (s *Span) SetStr(key, v string) *Span {
	if s != nil {
		s.Attrs = append(s.Attrs, Attr{Key: key, Str: v, IsStr: true})
	}
	return s
}

// TraceID returns the span's trace ID, or 0 for a nil span.
func (s *Span) TraceID() uint64 {
	if s == nil {
		return 0
	}
	return s.Trace
}

// End stamps the duration and records the span into the ring. Nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.Duration = time.Since(s.Start)
	record(*s)
}

// EndAt records the span with an explicit duration, for call sites
// that already measured the interval themselves. Nil-safe.
func (s *Span) EndAt(d time.Duration) {
	if s == nil {
		return
	}
	s.Duration = d
	record(*s)
}

// Record emits a retrospective span under parent covering an interval
// that was measured out-of-band (e.g. the cost fields the mechanisms
// already track). No-op when parent is nil or tracing is off.
func Record(parent *Span, name string, start time.Time, d time.Duration, attrs ...Attr) {
	if parent == nil || !enabled.Load() {
		return
	}
	record(Span{
		Trace:    parent.Trace,
		ID:       idSeq.Add(1),
		Parent:   parent.ID,
		Name:     name,
		Start:    start,
		Duration: d,
		Attrs:    attrs,
	})
}

func record(s Span) {
	ringMu.Lock()
	ring[ringNext%uint64(len(ring))] = s
	ringNext++
	ringMu.Unlock()
}

// Spans returns the retained spans, oldest first.
func Spans() []Span {
	ringMu.Lock()
	defer ringMu.Unlock()
	n := ringNext
	size := uint64(len(ring))
	if n > size {
		n = size
	}
	out := make([]Span, 0, n)
	start := ringNext - n
	for i := uint64(0); i < n; i++ {
		out = append(out, ring[(start+i)%size])
	}
	return out
}

// TraceSpans returns the retained spans belonging to one trace,
// oldest first. trace == 0 returns nil.
func TraceSpans(trace uint64) []Span {
	if trace == 0 {
		return nil
	}
	all := Spans()
	out := make([]Span, 0, 16)
	for _, s := range all {
		if s.Trace == trace {
			out = append(out, s)
		}
	}
	return out
}

// LastTrace returns the trace ID of the most recently recorded span,
// or 0 if the ring is empty.
func LastTrace() uint64 {
	ringMu.Lock()
	defer ringMu.Unlock()
	if ringNext == 0 {
		return 0
	}
	return ring[(ringNext-1)%uint64(len(ring))].Trace
}
