package obs

import (
	"strings"
	"testing"
	"time"
)

func TestWriteMetricsRoundTrip(t *testing.T) {
	fams := []MetricFamily{
		{Name: "rql_test_total", Help: `a "quoted" help
with a newline and a \`, Type: Counter,
			Samples: []Sample{
				{Value: 42},
				{Labels: []Label{{"role", `pri"mary`}, {"id", "a\nb\\c"}}, Value: 7},
			}},
		{Name: "rql_test_gauge", Type: Gauge,
			Samples: []Sample{{Labels: []Label{{"view", "v1"}}, Value: -1.5}}},
		{Name: "rql_test_seconds", Type: HistogramType,
			Histograms: []HistogramSample{{
				Bounds: []float64{0.001, 0.01, 0.1},
				Counts: []uint64{3, 2, 1, 4}, // disjoint; encoder accumulates
				Sum:    1.25,
			}}},
	}
	var b strings.Builder
	if err := WriteMetrics(&b, fams); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	// The exporter's own validator accepts its output — the contract
	// /metrics is tested through.
	if err := ValidateExposition(out); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, out)
	}

	for _, want := range []string{
		"# TYPE rql_test_total counter",
		"rql_test_total 42",
		`rql_test_total{role="pri\"mary",id="a\nb\\c"} 7`,
		"# TYPE rql_test_gauge gauge",
		`rql_test_gauge{view="v1"} -1.5`,
		// Cumulative le series derived from disjoint bucket counts.
		`rql_test_seconds_bucket{le="0.001"} 3`,
		`rql_test_seconds_bucket{le="0.01"} 5`,
		`rql_test_seconds_bucket{le="0.1"} 6`,
		`rql_test_seconds_bucket{le="+Inf"} 10`,
		"rql_test_seconds_sum 1.25",
		"rql_test_seconds_count 10",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition misses %q:\n%s", want, out)
		}
	}
}

func TestWriteMetricsRejectsBadNames(t *testing.T) {
	var b strings.Builder
	if err := WriteMetrics(&b, []MetricFamily{{Name: "1bad", Type: Counter}}); err == nil {
		t.Error("metric name starting with a digit should be rejected")
	}
	err := WriteMetrics(&b, []MetricFamily{{
		Name: "rql_ok", Type: Counter,
		Samples: []Sample{{Labels: []Label{{"bad-label", "x"}}, Value: 1}},
	}})
	if err == nil {
		t.Error("label name with a dash should be rejected")
	}
	// Histogram with the wrong bucket-count arity.
	err = WriteMetrics(&b, []MetricFamily{{
		Name: "rql_h", Type: HistogramType,
		Histograms: []HistogramSample{{Bounds: []float64{1}, Counts: []uint64{1}}},
	}})
	if err == nil {
		t.Error("histogram with len(Counts) != len(Bounds)+1 should be rejected")
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	for name, data := range map[string]string{
		"bad metric name":   "1bad_name 3\n",
		"unparsable value":  "rql_x{a=\"b\"} notanumber\n",
		"unclosed label":    "rql_x{a=\"b 3\n",
		"non-cumulative le": "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
	} {
		if err := ValidateExposition(data); err == nil {
			t.Errorf("%s: validator accepted %q", name, data)
		}
	}
	if err := ValidateExposition("# TYPE rql_ok counter\nrql_ok 1\n"); err != nil {
		t.Errorf("minimal valid exposition rejected: %v", err)
	}
}

func TestTimelineRing(t *testing.T) {
	counters := map[string]uint64{"queries": 0}
	gauges := map[string]float64{"conns": 1}
	tl := NewTimeline(time.Second, 3, func() (map[string]uint64, map[string]float64) {
		c := make(map[string]uint64, len(counters))
		for k, v := range counters {
			c[k] = v
		}
		g := make(map[string]float64, len(gauges))
		for k, v := range gauges {
			g[k] = v
		}
		return c, g
	})

	// The first tick only establishes the baseline.
	tl.tick()
	if pts := tl.Points(); len(pts) != 0 {
		t.Fatalf("baseline tick produced %d points, want 0", len(pts))
	}

	counters["queries"] = 10
	gauges["conns"] = 4
	tl.tick()
	pts := tl.Points()
	if len(pts) != 1 {
		t.Fatalf("got %d points, want 1", len(pts))
	}
	if pts[0].Rates["queries"] <= 0 {
		t.Errorf("rate for an advancing counter should be positive, got %v", pts[0].Rates["queries"])
	}
	if pts[0].Gauges["conns"] != 4 {
		t.Errorf("gauge passed through = %v, want 4", pts[0].Gauges["conns"])
	}

	// A counter that moves backwards (stats reset) re-baselines with a
	// zero rate instead of a huge negative one.
	counters["queries"] = 2
	tl.tick()
	pts = tl.Points()
	if last := pts[len(pts)-1]; last.Rates["queries"] != 0 {
		t.Errorf("reset counter rate = %v, want 0", last.Rates["queries"])
	}

	// The ring keeps the newest size points, oldest first.
	for i := 0; i < 5; i++ {
		counters["queries"] += 10
		tl.tick()
	}
	pts = tl.Points()
	if len(pts) != 3 {
		t.Fatalf("ring retained %d points, want 3", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].When.Before(pts[i-1].When) {
			t.Fatalf("points out of order: %v before %v", pts[i].When, pts[i-1].When)
		}
	}
}

func TestTimelineStartStop(t *testing.T) {
	var n uint64
	tl := NewTimeline(time.Millisecond, 8, func() (map[string]uint64, map[string]float64) {
		n += 1000
		return map[string]uint64{"c": n}, nil
	})
	tl.Start()
	deadline := time.Now().Add(2 * time.Second)
	for len(tl.Points()) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	tl.Stop()
	tl.Stop() // idempotent
	if len(tl.Points()) == 0 {
		t.Fatal("started timeline never sampled")
	}
}
