package sql

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"rql/internal/obs"
	"rql/internal/record"
	"rql/internal/retro"
	"rql/internal/storage"
)

// Errors returned by the engine.
var (
	ErrNoTx     = errors.New("sql: no transaction is active")
	ErrTxOpen   = errors.New("sql: a transaction is already active")
	ErrReadOnly = errors.New("sql: cannot write to a snapshot")
)

// Options configures Open.
type Options struct {
	// Retro configures the snapshot system attached to the main store.
	Retro retro.Options
}

// DB is a database instance: a snapshotable main store managed by the
// Retro snapshot system, plus a separate non-snapshotable side store
// holding temporary tables and, by convention, the SnapIds table —
// exactly the paper's two-database layout (§3).
type DB struct {
	main *storage.Store
	side *storage.Store
	rsys *retro.System

	mu    sync.Mutex
	funcs map[string]*FuncDef

	// annotHook, when set, observes snapshot annotations (SnapIds rows
	// registered via core.RecordSnapshot). Replication ships them
	// logically: SnapIds lives in the non-snapshotable side store, which
	// page-level deltas do not cover.
	annotHook func(snapID uint64, ts, label string)

	// Retro-view hooks (view.go): the maintenance layer, the logical
	// DDL shipping hook for replication, and the post-commit snapshot
	// announcement that triggers incremental refreshes.
	viewHook    RetroViewHook
	viewDDLHook func(create bool, def RetroViewDef)
	snapHook    func(snapID uint64)

	// Current-state schema caches, valid while the store LSN matches.
	mainSchemaLSN uint64
	mainSchema    *schema
	sideSchemaLSN uint64
	sideSchema    *schema
}

// SetAnnotationHook registers fn to observe snapshot annotations; nil
// unregisters. fn runs on the annotating connection's goroutine.
func (db *DB) SetAnnotationHook(fn func(snapID uint64, ts, label string)) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.annotHook = fn
}

// NotifyAnnotation invokes the annotation hook, if any.
func (db *DB) NotifyAnnotation(snapID uint64, ts, label string) {
	db.mu.Lock()
	fn := db.annotHook
	db.mu.Unlock()
	if fn != nil {
		fn(snapID, ts, label)
	}
}

// Open creates a new database.
func Open(opts Options) (*DB, error) {
	db := &DB{
		main:  storage.NewStore(),
		side:  storage.NewStore(),
		funcs: builtinFuncs(),
	}
	rsys, err := retro.New(db.main, opts.Retro)
	if err != nil {
		return nil, err
	}
	db.rsys = rsys
	// Format both stores with an empty catalog. The side store has no
	// commit hook, so its catalog commit declares nothing.
	for _, st := range []*storage.Store{db.main, db.side} {
		tx, err := st.Begin()
		if err != nil {
			return nil, err
		}
		if err := initCatalog(tx); err != nil {
			tx.Rollback()
			return nil, err
		}
		if err := tx.Commit(); err != nil {
			return nil, err
		}
	}
	// The snapshotable main store commits through the group-commit
	// pipeline by default: sessions stage write sets concurrently and
	// the commit queue batches them (storage/group.go); autocommit
	// statements aborted first-committer-wins retry transparently
	// (execWrite). The side store keeps the legacy exclusive writer
	// lock — parallel mechanism workers rely on it to serialize
	// result-table writes without conflict aborts.
	db.main.SetGroupCommit(true)
	return db, nil
}

// SetGroupCommit toggles the main store's group-commit pipeline
// (default on). Off restores the exclusive writer-lock commit path —
// the serial baseline of the commits/sec bench. Must not be toggled
// while writer transactions are in flight.
func (db *DB) SetGroupCommit(on bool) { db.main.SetGroupCommit(on) }

// GroupCommit reports whether the main store commits in groups.
func (db *DB) GroupCommit() bool { return db.main.GroupCommit() }

// Close releases the database.
func (db *DB) Close() error {
	db.main.Close()
	db.side.Close()
	return db.rsys.Close()
}

// Retro exposes the snapshot system (cache control, statistics).
func (db *DB) Retro() *retro.System { return db.rsys }

// MainStore exposes the snapshotable store (statistics, page counts).
func (db *DB) MainStore() *storage.Store { return db.main }

// SideStore exposes the non-snapshotable store.
func (db *DB) SideStore() *storage.Store { return db.side }

// Conn creates a new connection. Connections are not safe for
// concurrent use; open one per goroutine.
func (db *DB) Conn() *Conn { return &Conn{db: db} }

// currentSchema returns the (possibly cached) schema of a store's
// current state as seen through the given pager.
func (db *DB) currentSchema(st *storage.Store, p storage.Pager, lsn uint64, temp bool) (*schema, error) {
	db.mu.Lock()
	if st == db.main && db.mainSchema != nil && db.mainSchemaLSN == lsn {
		s := db.mainSchema
		db.mu.Unlock()
		return s, nil
	}
	if st == db.side && db.sideSchema != nil && db.sideSchemaLSN == lsn {
		s := db.sideSchema
		db.mu.Unlock()
		return s, nil
	}
	db.mu.Unlock()
	s, err := loadSchema(p, temp)
	if err != nil {
		return nil, err
	}
	db.mu.Lock()
	if st == db.main {
		db.mainSchema, db.mainSchemaLSN = s, lsn
	} else {
		db.sideSchema, db.sideSchemaLSN = s, lsn
	}
	db.mu.Unlock()
	return s, nil
}

// ExecStats reports the measured costs of the last statement executed
// on a connection, broken down the way the paper's §5 figures are:
// snapshot-page I/O, SPT construction, transient index creation, and
// the remainder (query evaluation, which for RQL statements includes
// the UDF work — the core package splits that part further).
type ExecStats struct {
	Duration       time.Duration // wall time of the statement
	SPTBuildTime   time.Duration // snapshot page table construction
	AutoIndex      time.Duration // transient covering indexes for joins
	MapScanned     int           // Maplog entries scanned for the SPT
	PagelogReads   int           // logical snapshot pages fetched from the Pagelog
	CacheHits      int           // snapshot pages served from the cache
	DBReads        int           // snapshot pages shared with the current DB
	ClusteredReads int           // coalesced Pagelog read runs (prefetch)
	ClusteredPages int           // pages loaded by those runs
	PrefetchHits   int           // logical reads satisfied early by a warmed page
	RowsReturned   int
	QueueWait      time.Duration // device queue wait behind the statement's demand misses
}

// ModeledIO converts Pagelog misses into modeled I/O time.
func (s ExecStats) ModeledIO(perRead time.Duration) time.Duration {
	return time.Duration(s.PagelogReads) * perRead
}

// RowCallback receives result rows, sqlite3_exec style. Returning a
// non-nil error aborts the statement with that error.
type RowCallback func(cols []string, row []record.Value) error

// Conn is a database connection: it carries the explicit-transaction
// state and the per-statement statistics.
type Conn struct {
	db           *DB
	mainTx       *storage.Tx
	lastStats    ExecStats
	lastSnapshot uint64

	// Read-set recording (SetRecordReadSet): while on, every
	// snapshot-bound statement records the page ids its SnapshotReader
	// served — the statement's page read-set, the left operand of the
	// delta-pruning intersection.
	recordReads bool
	lastReadSet PageSet

	// Parsed-statement cache: the RQL mechanisms execute the identical
	// Qq text once per snapshot, so the parse is paid once. Parsed ASTs
	// are never mutated by execution, making reuse safe. FIFO-bounded.
	stmtCache     map[string][]Statement
	stmtCacheKeys []string

	// Tracing: span is the ambient parent every statement batch hangs
	// under (set by the server per request, or by the core mechanisms
	// per iteration); curStmt is the span of the statement currently
	// executing; lastTrace remembers the trace of the newest batch so
	// shells can fetch it after the fact. All nil/zero when untraced.
	span      *obs.Span
	curStmt   *obs.Span
	lastTrace uint64

	// slowCost carries the retrospective cost of the executing batch
	// into the slow-query log: billed Pagelog reads accumulate from
	// per-statement stats, mechanism name and pruned-iteration count
	// are filled by statements that run a mechanism (NoteMechRun).
	slowCost obs.SlowCost

	// lastMech is the profile of the mechanism run the executing
	// statement completed, pushed down by the mechanism layer's
	// finalizer (NoteMechRun); EXPLAIN ANALYZE renders it.
	lastMech *MechProfile

	// Ambient context (SetContext): writer-transaction Begin honors
	// its cancellation/deadline while waiting for the legacy writer
	// lock, and a staged group commit abandons its queue slot if the
	// context fires before the leader claims it. nil = background.
	ctx context.Context
}

// SetContext sets the connection's ambient context. Writer Begin
// (legacy writer-lock wait) and group-commit queue waits honor its
// cancellation and deadline; a nil ctx restores context.Background().
// The server points this at the session's lifetime context so a dead
// client never leaves a writer parked in the commit queue.
func (c *Conn) SetContext(ctx context.Context) { c.ctx = ctx }

// SetTraceSpan sets the parent span for statements executed on this
// connection. With a nil parent (the default), each statement batch
// starts its own trace root while tracing is enabled.
func (c *Conn) SetTraceSpan(sp *obs.Span) { c.span = sp }

// TraceSpan returns the connection's current parent span (may be nil).
func (c *Conn) TraceSpan() *obs.Span { return c.span }

// CurrentSpan returns the span work started right now should hang
// under: the executing statement's span if a statement is running
// (e.g. from inside a UDF), else the connection's parent span.
func (c *Conn) CurrentSpan() *obs.Span { return c.traceParent() }

// LastTrace returns the trace ID of the most recent traced statement
// batch on this connection (0 if tracing was off).
func (c *Conn) LastTrace() uint64 { return c.lastTrace }

// traceParent is the span new work should hang under right now: the
// executing statement if there is one, else the connection's parent.
func (c *Conn) traceParent() *obs.Span {
	if c.curStmt != nil {
		return c.curStmt
	}
	return c.span
}

// stmtName returns the span-name suffix for a parsed statement.
func stmtName(stmt Statement) string {
	switch stmt.(type) {
	case *SelectStmt:
		return "select"
	case *ExplainStmt:
		return "explain"
	case *BeginStmt:
		return "begin"
	case *CommitStmt:
		return "commit"
	case *RollbackStmt:
		return "rollback"
	case *InsertStmt:
		return "insert"
	case *UpdateStmt:
		return "update"
	case *DeleteStmt:
		return "delete"
	case *CreateTableStmt:
		return "create_table"
	case *CreateIndexStmt:
		return "create_index"
	case *DropStmt:
		return "drop"
	case *CreateRetroViewStmt:
		return "create_retro_view"
	case *DropRetroViewStmt:
		return "drop_retro_view"
	case *RefreshRetroViewStmt:
		return "refresh_retro_view"
	default:
		return "stmt"
	}
}

// truncSQL bounds the SQL text attached to spans and slow-log entries.
func truncSQL(s string) string {
	const max = 200
	if len(s) <= max {
		return s
	}
	return s[:max] + "…"
}

// SetRecordReadSet toggles page read-set recording for snapshot-bound
// statements on this connection. While on, each such statement replaces
// the connection's read-set with a freshly recorded one; previously
// returned ReadSet maps are never mutated afterwards.
func (c *Conn) SetRecordReadSet(on bool) {
	c.recordReads = on
	if !on {
		c.lastReadSet = nil
	}
}

// ReadSet returns the page read-set recorded for the most recent
// snapshot-bound statement (nil when recording is off or no snapshot
// statement has run). The map includes every page the snapshot reader
// served — Pagelog pre-states, cached pages, and pages shared with the
// current database, catalog pages included.
func (c *Conn) ReadSet() PageSet { return c.lastReadSet }

// stmtCacheCap bounds the per-connection parsed-statement cache.
const stmtCacheCap = 64

// parseCached returns the parsed statements for sqlText, parsing at
// most once per distinct text (until FIFO eviction).
func (c *Conn) parseCached(sqlText string) ([]Statement, error) {
	if stmts, ok := c.stmtCache[sqlText]; ok {
		return stmts, nil
	}
	stmts, err := ParseAll(sqlText)
	if err != nil {
		return nil, err
	}
	if c.stmtCache == nil {
		c.stmtCache = make(map[string][]Statement)
	}
	if len(c.stmtCacheKeys) >= stmtCacheCap {
		delete(c.stmtCache, c.stmtCacheKeys[0])
		c.stmtCacheKeys = c.stmtCacheKeys[1:]
	}
	c.stmtCache[sqlText] = stmts
	c.stmtCacheKeys = append(c.stmtCacheKeys, sqlText)
	return stmts, nil
}

// LastStats returns the statistics of the most recent statement.
func (c *Conn) LastStats() ExecStats { return c.lastStats }

// LastSnapshot returns the snapshot id declared by the most recent
// COMMIT WITH SNAPSHOT on this connection.
func (c *Conn) LastSnapshot() uint64 { return c.lastSnapshot }

// DB returns the database this connection belongs to.
func (c *Conn) DB() *DB { return c.db }

// InTx reports whether an explicit transaction is open.
func (c *Conn) InTx() bool { return c.mainTx != nil }

// Exec parses and executes one or more semicolon-separated statements
// against the current state, invoking cb for every result row.
func (c *Conn) Exec(sqlText string, cb RowCallback, params ...record.Value) error {
	return c.execAsOf(sqlText, nil, 0, cb, params)
}

// ExecAsOf executes statements with SELECTs bound to the given snapshot
// (equivalent to rewriting each query with "AS OF snap", the paper's §3
// Qq rewrite). Write statements are rejected under a snapshot binding.
func (c *Conn) ExecAsOf(sqlText string, snap uint64, cb RowCallback, params ...record.Value) error {
	return c.execAsOf(sqlText, nil, retro.SnapshotID(snap), cb, params)
}

// ExecAsOfSet is ExecAsOf against a pre-built reader set: when snap is
// a member of set, the statement reads through the set's batch-built
// SPT and shared pinned read transaction instead of building a fresh
// SPT — the per-iteration path of the RQL mechanisms. Snapshots outside
// the set fall back to a standalone OpenSnapshot.
func (c *Conn) ExecAsOfSet(sqlText string, set *ReaderSet, snap uint64, cb RowCallback, params ...record.Value) error {
	return c.execAsOf(sqlText, set, retro.SnapshotID(snap), cb, params)
}

func (c *Conn) execAsOf(sqlText string, set *ReaderSet, asOf retro.SnapshotID, cb RowCallback, params []record.Value) error {
	// One span per statement batch; a timestamp is taken only when the
	// batch is traced or the slow-query log is armed, so the untraced
	// path pays two atomic loads and nothing else.
	sp := obs.StartSpan(c.span, "sql.exec")
	timed := sp != nil || obs.SlowThreshold() > 0
	var start time.Time
	if timed {
		start = time.Now()
	}
	if sp != nil {
		c.lastTrace = sp.TraceID()
		sp.SetStr("sql", truncSQL(sqlText))
		if asOf != 0 {
			sp.SetInt("as_of", int64(asOf))
		}
	} else if c.span == nil && c.curStmt == nil {
		// An untraced top-level batch clears the remembered trace so
		// LastTrace never reports a stale ID; nested batches (UDF
		// re-entry) leave the outer batch's trace alone.
		c.lastTrace = 0
	}
	stmts, err := c.parseCached(sqlText)
	if sp != nil {
		obs.Record(sp, "sql.parse", start, time.Since(start))
	}
	rows := 0
	if err == nil {
		// Save/restore curStmt: execAsOf re-enters through UDFs (a
		// mechanism iteration executes Qq inside the outer SELECT).
		// slowCost likewise: a nested Qq batch must not clobber the
		// outer batch's accumulated retrospective cost.
		saved := c.curStmt
		savedCost := c.slowCost
		c.slowCost = obs.SlowCost{}
		defer func() { c.slowCost = savedCost }()
		for _, stmt := range stmts {
			ssp := sp.Child("sql." + stmtName(stmt))
			c.curStmt = ssp
			err = c.execStmt(stmt, set, asOf, cb, params)
			c.curStmt = saved
			if ssp != nil {
				st := c.lastStats
				ssp.SetInt("rows", int64(st.RowsReturned))
				if st.PagelogReads != 0 {
					ssp.SetInt("pagelog_reads", int64(st.PagelogReads))
				}
				if st.CacheHits != 0 {
					ssp.SetInt("cache_hits", int64(st.CacheHits))
				}
				if st.DBReads != 0 {
					ssp.SetInt("db_reads", int64(st.DBReads))
				}
				ssp.End()
			}
			rows += c.lastStats.RowsReturned
			c.slowCost.PagelogReads += int64(c.lastStats.PagelogReads)
			if err != nil {
				break
			}
		}
	}
	if timed {
		obs.ObserveQuery(truncSQL(sqlText), time.Since(start), sp.TraceID(), int64(rows), c.slowCost)
	}
	sp.End()
	return err
}

// Query executes a single SELECT and returns the fully materialized
// result (column names and rows).
func (c *Conn) Query(sqlText string, params ...record.Value) (*Rows, error) {
	rows := &Rows{}
	err := c.Exec(sqlText, func(cols []string, row []record.Value) error {
		if rows.Cols == nil {
			rows.Cols = cols
		}
		cp := make([]record.Value, len(row))
		copy(cp, row)
		rows.Rows = append(rows.Rows, cp)
		return nil
	}, params...)
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Rows is a materialized query result.
type Rows struct {
	Cols []string
	Rows [][]record.Value
}

// Begin opens an explicit transaction (the paper's BEGIN).
func (c *Conn) Begin() error {
	if c.mainTx != nil {
		return ErrTxOpen
	}
	tx, err := c.db.main.BeginCtx(c.ctx)
	if err != nil {
		return err
	}
	c.mainTx = tx
	return nil
}

// Commit commits the explicit transaction.
func (c *Conn) Commit() error {
	if c.mainTx == nil {
		return ErrNoTx
	}
	c.mainTx.SetTraceSpan(c.traceParent())
	err := c.mainTx.Commit()
	c.mainTx = nil
	return err
}

// CommitWithSnapshot commits the explicit transaction and declares a
// snapshot that includes it (the paper's COMMIT WITH SNAPSHOT),
// returning the new snapshot id.
func (c *Conn) CommitWithSnapshot() (uint64, error) {
	if c.mainTx == nil {
		return 0, ErrNoTx
	}
	c.mainTx.SetTraceSpan(c.traceParent())
	id, err := c.mainTx.CommitWithSnapshot()
	c.mainTx = nil
	if err != nil {
		return 0, err
	}
	c.lastSnapshot = id
	// Announce after the commit returned: commit groups drain in LSN
	// order, so every page of this snapshot (and of all earlier ones)
	// is installed and readable by now.
	c.db.notifySnapshot(id)
	return id, nil
}

// Rollback aborts the explicit transaction.
func (c *Conn) Rollback() error {
	if c.mainTx == nil {
		return ErrNoTx
	}
	c.mainTx.Rollback()
	c.mainTx = nil
	return nil
}

// execCtx is the per-statement execution context: the pagers and
// schemas for both stores, the snapshot binding, parameters, UDF
// auxiliary state, and the statistics being accumulated.
type execCtx struct {
	conn *Conn

	mainPager  storage.Pager
	sidePager  storage.Pager
	mainSchema *schema
	sideSchema *schema

	asOf       retro.SnapshotID
	snapReader *retro.SnapshotReader
	readSet    PageSet // recorded by snapReader when non-nil

	params []record.Value
	aux    map[*FuncCall]any
	stats  *ExecStats

	closers []func()
}

// StmtFinalizer is implemented by UDF auxiliary state (FuncContext.Aux)
// that needs an end-of-statement signal — the RQL mechanism states use
// it to commit their result-table writer and publish run statistics.
// commit is false when the statement failed or was aborted.
type StmtFinalizer interface {
	FinalizeStmt(commit bool) error
}

// finalize notifies every finalizable aux state; the first error wins.
func (ec *execCtx) finalize(commit bool) error {
	var first error
	for _, v := range ec.aux {
		if f, ok := v.(StmtFinalizer); ok {
			if err := f.FinalizeStmt(commit); err != nil && first == nil {
				first = err
			}
		}
	}
	ec.aux = nil
	return first
}

func (ec *execCtx) close() {
	for i := len(ec.closers) - 1; i >= 0; i-- {
		ec.closers[i]()
	}
	ec.closers = nil
	if ec.snapReader != nil {
		ec.stats.SPTBuildTime += ec.snapReader.Counters.SPTBuildTime
		ec.stats.MapScanned += ec.snapReader.Counters.MapScanned
		ec.stats.PagelogReads += ec.snapReader.Counters.PagelogReads
		ec.stats.CacheHits += ec.snapReader.Counters.CacheHits
		ec.stats.DBReads += ec.snapReader.Counters.DBReads
		ec.stats.ClusteredReads += ec.snapReader.Counters.ClusteredReads
		ec.stats.ClusteredPages += ec.snapReader.Counters.ClusteredPages
		ec.stats.PrefetchHits += ec.snapReader.Counters.PrefetchHits
		ec.stats.QueueWait += ec.snapReader.Counters.QueueWait
	}
	if ec.readSet != nil {
		ec.conn.lastReadSet = ec.readSet
	}
}

// resolveTable finds a table by name, looking in the side store first
// (temp shadows main, as in SQLite) and then the main store.
func (ec *execCtx) resolveTable(name string) (*Table, *schema, storage.Pager, error) {
	if t := ec.sideSchema.table(name); t != nil {
		return t, ec.sideSchema, ec.sidePager, nil
	}
	if t := ec.mainSchema.table(name); t != nil {
		return t, ec.mainSchema, ec.mainPager, nil
	}
	return nil, nil, nil, fmt.Errorf("%w: %s", ErrNoTable, name)
}

// newReadCtx builds an execution context for a read-only statement.
// When set is non-nil and contains asOf, the snapshot is served from
// the set's batch-built SPT (O(1) open, no fresh MVCC pin).
func (c *Conn) newReadCtx(set *ReaderSet, asOf retro.SnapshotID, params []record.Value, stats *ExecStats) (*execCtx, error) {
	ec := &execCtx{conn: c, asOf: asOf, params: params, stats: stats}

	// Side store: always the current state.
	srt, err := c.db.side.BeginRead()
	if err != nil {
		return nil, err
	}
	ec.closers = append(ec.closers, srt.Close)
	ec.sidePager = srt
	ec.sideSchema, err = c.db.currentSchema(c.db.side, srt, srt.LSN(), true)
	if err != nil {
		ec.close()
		return nil, err
	}

	// Main store: snapshot, explicit transaction, or current state.
	switch {
	case asOf != 0:
		r, err := openSnapReader(c.db.rsys, set, asOf)
		if err != nil {
			ec.close()
			return nil, err
		}
		ec.snapReader = r
		ec.closers = append(ec.closers, r.Close)
		ec.mainPager = r
		if sp := c.traceParent(); sp != nil {
			r.SetTraceSpan(sp)
			// A standalone open just paid a Maplog scan; surface it as a
			// retroactive child (set-opened readers have build time 0 —
			// their batch sweep is the run-level spt_batch_build span).
			if bt := r.Counters.SPTBuildTime; bt > 0 {
				obs.Record(sp, "retro.spt_build", time.Now().Add(-bt), bt,
					obs.Attr{Key: "snapshot", Int: int64(asOf)},
					obs.Attr{Key: "map_scanned", Int: int64(r.Counters.MapScanned)})
			}
		}
		if c.recordReads {
			// Recording starts before the catalog load below, so schema
			// pages are part of the read-set too (a schema change between
			// members must defeat pruning like any other page change).
			ec.readSet = make(PageSet)
			r.RecordReadSet(ec.readSet)
		}
		// The snapshot's own catalog: schema as of the snapshot.
		ec.mainSchema, err = loadSchema(r, false)
		if err != nil {
			ec.close()
			return nil, err
		}
	case c.mainTx != nil:
		ec.mainPager = c.mainTx
		ec.mainSchema, err = loadSchema(c.mainTx, false)
		if err != nil {
			ec.close()
			return nil, err
		}
	default:
		mrt, err := c.db.main.BeginRead()
		if err != nil {
			ec.close()
			return nil, err
		}
		ec.closers = append(ec.closers, mrt.Close)
		ec.mainPager = mrt
		ec.mainSchema, err = c.db.currentSchema(c.db.main, mrt, mrt.LSN(), false)
		if err != nil {
			ec.close()
			return nil, err
		}
	}
	return ec, nil
}

// execStmt dispatches one parsed statement.
func (c *Conn) execStmt(stmt Statement, set *ReaderSet, asOf retro.SnapshotID, cb RowCallback, params []record.Value) error {
	start := time.Now()
	stats := ExecStats{}
	var err error
	switch s := stmt.(type) {
	case *SelectStmt:
		err = c.execSelect(s, set, asOf, cb, params, &stats)
	case *ExplainStmt:
		if s.Analyze {
			err = c.execExplainAnalyze(s, set, asOf, cb, params, &stats)
		} else {
			err = c.execExplain(s, cb, params, &stats)
		}
	case *BeginStmt:
		err = c.Begin()
	case *CommitStmt:
		if s.WithSnapshot {
			_, err = c.CommitWithSnapshot()
		} else {
			err = c.Commit()
		}
	case *RollbackStmt:
		err = c.Rollback()
	case *CreateRetroViewStmt:
		if asOf != 0 {
			return ErrReadOnly
		}
		if err = c.execWrite(s, params, &stats); err == nil {
			def := RetroViewDef{Name: s.Name, Mechanism: s.Mechanism, Qq: s.Qq, Extra: s.Extra, HasExtra: s.HasExtra}
			if h := c.db.retroViewHook(); h != nil {
				h.ViewCreated(def)
			}
			c.db.notifyViewDDL(true, def)
		}
	case *DropRetroViewStmt:
		if asOf != 0 {
			return ErrReadOnly
		}
		existed := false
		if _, gerr := c.db.GetView(s.Name); gerr == nil {
			existed = true
		}
		if err = c.execWrite(s, params, &stats); err == nil && existed {
			if h := c.db.retroViewHook(); h != nil {
				h.ViewDropped(s.Name)
			}
			c.db.notifyViewDDL(false, RetroViewDef{Name: s.Name})
		}
	case *RefreshRetroViewStmt:
		if asOf != 0 {
			return ErrReadOnly
		}
		h := c.db.retroViewHook()
		if h == nil {
			err = errors.New("sql: retro views are not supported on this database")
		} else {
			err = h.ViewRefresh(s.Name)
		}
	default:
		if asOf != 0 {
			return ErrReadOnly
		}
		err = c.execWrite(stmt, params, &stats)
	}
	stats.Duration = time.Since(start)
	c.lastStats = stats
	return err
}

// execSelect runs a SELECT, streaming rows to cb.
func (c *Conn) execSelect(s *SelectStmt, set *ReaderSet, asOf retro.SnapshotID, cb RowCallback, params []record.Value, stats *ExecStats) error {
	// The statement-level AS OF clause overrides the binding.
	if s.AsOf != nil {
		v, err := c.constEval(s.AsOf, params)
		if err != nil {
			return err
		}
		if v.IsNull() {
			return fmt.Errorf("sql: AS OF requires a snapshot id")
		}
		asOf = retro.SnapshotID(v.AsInt())
	}
	ec, err := c.newReadCtx(set, asOf, params, stats)
	if err != nil {
		return err
	}
	defer ec.close()

	err = func() error {
		var planStart time.Time
		if c.curStmt != nil {
			planStart = time.Now()
		}
		it, cols, err := planSelect(s, ec)
		if c.curStmt != nil {
			obs.Record(c.curStmt, "sql.plan", planStart, time.Since(planStart))
		}
		if err != nil {
			return err
		}
		defer it.Close()

		names := make([]string, len(cols))
		for i, ci := range cols {
			names[i] = ci.name
		}
		for {
			row, err := it.Next()
			if err != nil {
				return err
			}
			if row == nil {
				return nil
			}
			stats.RowsReturned++
			if cb != nil {
				if err := cb(names, row); err != nil {
					return err
				}
			}
		}
	}()
	if ferr := ec.finalize(err == nil); err == nil {
		err = ferr
	}
	return err
}

// constEval evaluates an expression with no row context (literals,
// parameters, arithmetic).
func (c *Conn) constEval(e Expr, params []record.Value) (record.Value, error) {
	ec := &execCtx{conn: c, params: params, stats: &ExecStats{}}
	ce, err := compileExpr(e, &compileEnv{ec: ec})
	if err != nil {
		return record.Value{}, err
	}
	return ce(&rowCtx{ec: ec})
}

// DeclareSnapshot runs an empty BEGIN; COMMIT WITH SNAPSHOT cycle,
// declaring a snapshot of the current state, and returns its id.
func (c *Conn) DeclareSnapshot() (uint64, error) {
	if c.mainTx != nil {
		return 0, ErrTxOpen
	}
	if err := c.Begin(); err != nil {
		return 0, err
	}
	return c.CommitWithSnapshot()
}

// quoteIdent quotes an identifier for inclusion in generated SQL.
func quoteIdent(name string) string {
	return `"` + strings.ReplaceAll(name, `"`, `""`) + `"`
}
