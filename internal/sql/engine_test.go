package sql

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"rql/internal/record"
	"rql/internal/retro"
)

func testConn(t *testing.T) *Conn {
	t.Helper()
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db.Conn()
}

// mustExec runs statements, failing the test on error.
func mustExec(t *testing.T, c *Conn, sql string, params ...record.Value) {
	t.Helper()
	if err := c.Exec(sql, nil, params...); err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
}

// q runs a query and renders each row as "v1|v2|...".
func q(t *testing.T, c *Conn, sql string, params ...record.Value) []string {
	t.Helper()
	rows, err := c.Query(sql, params...)
	if err != nil {
		t.Fatalf("Query(%q): %v", sql, err)
	}
	out := make([]string, 0, len(rows.Rows))
	for _, r := range rows.Rows {
		parts := make([]string, len(r))
		for i, v := range r {
			parts[i] = v.String()
		}
		out = append(out, strings.Join(parts, "|"))
	}
	return out
}

func expectRows(t *testing.T, got []string, want ...string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d rows %v, want %d rows %v", len(got), got, len(want), want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: got %q want %q (all: %v)", i, got[i], want[i], got)
		}
	}
}

// expectSet compares rows ignoring order.
func expectSet(t *testing.T, got []string, want ...string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d rows %v, want %d rows %v", len(got), got, len(want), want)
	}
	set := make(map[string]int)
	for _, g := range got {
		set[g]++
	}
	for _, w := range want {
		if set[w] == 0 {
			t.Fatalf("missing row %q in %v", w, got)
		}
		set[w]--
	}
}

func TestCreateInsertSelect(t *testing.T) {
	c := testConn(t)
	mustExec(t, c, `CREATE TABLE users (id INTEGER PRIMARY KEY, name TEXT, age INTEGER)`)
	mustExec(t, c, `INSERT INTO users (name, age) VALUES ('alice', 30), ('bob', 25)`)
	expectRows(t, q(t, c, `SELECT id, name, age FROM users ORDER BY id`),
		"1|alice|30", "2|bob|25")
	expectRows(t, q(t, c, `SELECT name FROM users WHERE age > 26`), "alice")
	expectRows(t, q(t, c, `SELECT COUNT(*) FROM users`), "2")
}

func TestSelectStar(t *testing.T) {
	c := testConn(t)
	mustExec(t, c, `CREATE TABLE p (a, b)`)
	mustExec(t, c, `INSERT INTO p VALUES (1, 'x')`)
	expectRows(t, q(t, c, `SELECT * FROM p`), "1|x")
	expectRows(t, q(t, c, `SELECT p.* FROM p`), "1|x")
	expectRows(t, q(t, c, `SELECT rowid, * FROM p`), "1|1|x")
}

func TestExpressions(t *testing.T) {
	c := testConn(t)
	cases := map[string]string{
		`SELECT 1 + 2 * 3`:                                  "7",
		`SELECT (1 + 2) * 3`:                                "9",
		`SELECT 10 / 4`:                                     "2",
		`SELECT 10.0 / 4`:                                   "2.5",
		`SELECT 7 % 3`:                                      "1",
		`SELECT 1 / 0`:                                      "NULL",
		`SELECT -5`:                                         "-5",
		`SELECT 'a' || 'b' || 'c'`:                          "abc",
		`SELECT 1 < 2`:                                      "1",
		`SELECT 2 <= 1`:                                     "0",
		`SELECT 'abc' = 'abc'`:                              "1",
		`SELECT 1 != 2`:                                     "1",
		`SELECT 1 <> 2`:                                     "1",
		`SELECT NULL IS NULL`:                               "1",
		`SELECT 1 IS NOT NULL`:                              "1",
		`SELECT NULL = NULL`:                                "NULL",
		`SELECT 2 BETWEEN 1 AND 3`:                          "1",
		`SELECT 4 NOT BETWEEN 1 AND 3`:                      "1",
		`SELECT 2 IN (1, 2, 3)`:                             "1",
		`SELECT 5 NOT IN (1, 2, 3)`:                         "1",
		`SELECT 'hello' LIKE 'he%'`:                         "1",
		`SELECT 'hello' LIKE 'h_llo'`:                       "1",
		`SELECT 'hello' NOT LIKE 'x%'`:                      "1",
		`SELECT 'HELLO' LIKE 'hello'`:                       "1", // case-insensitive
		`SELECT CASE WHEN 1 THEN 'y' ELSE 'n' END`:          "y",
		`SELECT CASE 2 WHEN 1 THEN 'a' WHEN 2 THEN 'b' END`: "b",
		`SELECT CASE 9 WHEN 1 THEN 'a' END`:                 "NULL",
		`SELECT abs(-3)`:                                    "3",
		`SELECT length('abcd')`:                             "4",
		`SELECT upper('ab') || lower('CD')`:                 "ABcd",
		`SELECT substr('hello', 2, 3)`:                      "ell",
		`SELECT coalesce(NULL, NULL, 5)`:                    "5",
		`SELECT ifnull(NULL, 7)`:                            "7",
		`SELECT nullif(3, 3)`:                               "NULL",
		`SELECT typeof(3.5)`:                                "real",
		`SELECT round(2.567, 2)`:                            "2.57",
		`SELECT min(3, 1, 2)`:                               "1",
		`SELECT max(3, 1, 2)`:                               "3",
		`SELECT CAST('42' AS INTEGER)`:                      "42",
		`SELECT CAST(42 AS TEXT)`:                           "42",
		`SELECT NOT 0`:                                      "1",
		`SELECT 1 AND 1`:                                    "1",
		`SELECT 0 OR 1`:                                     "1",
		`SELECT NULL AND 0`:                                 "0",
		`SELECT NULL OR 1`:                                  "1",
		`SELECT NULL AND 1`:                                 "NULL",
		`SELECT TRUE`:                                       "1",
		`SELECT FALSE`:                                      "0",
	}
	for sql, want := range cases {
		got := q(t, c, sql)
		if len(got) != 1 || got[0] != want {
			t.Errorf("%s = %v, want %q", sql, got, want)
		}
	}
}

func TestParams(t *testing.T) {
	c := testConn(t)
	mustExec(t, c, `CREATE TABLE t (a, b)`)
	mustExec(t, c, `INSERT INTO t VALUES (?, ?)`, record.Int(5), record.Text("five"))
	expectRows(t, q(t, c, `SELECT b FROM t WHERE a = ?`, record.Int(5)), "five")
	if err := c.Exec(`SELECT ? + 1`, nil); err == nil {
		t.Error("missing parameter should error")
	}
}

func TestUpdateDelete(t *testing.T) {
	c := testConn(t)
	mustExec(t, c, `CREATE TABLE t (a, b)`)
	mustExec(t, c, `INSERT INTO t VALUES (1, 'one'), (2, 'two'), (3, 'three')`)
	mustExec(t, c, `UPDATE t SET b = 'TWO', a = a * 10 WHERE a = 2`)
	expectSet(t, q(t, c, `SELECT a, b FROM t`), "1|one", "20|TWO", "3|three")
	mustExec(t, c, `DELETE FROM t WHERE a >= 3`)
	expectSet(t, q(t, c, `SELECT a FROM t`), "1")
	mustExec(t, c, `DELETE FROM t`)
	expectRows(t, q(t, c, `SELECT COUNT(*) FROM t`), "0")
}

func TestGroupByAggregates(t *testing.T) {
	c := testConn(t)
	mustExec(t, c, `CREATE TABLE sales (region TEXT, amount INTEGER)`)
	mustExec(t, c, `INSERT INTO sales VALUES
		('east', 10), ('east', 20), ('west', 5), ('west', 7), ('west', 9)`)
	expectSet(t, q(t, c, `SELECT region, COUNT(*), SUM(amount), MIN(amount), MAX(amount), AVG(amount)
		FROM sales GROUP BY region`),
		"east|2|30|10|20|15", "west|3|21|5|9|7")
	expectRows(t, q(t, c, `SELECT region, SUM(amount) AS s FROM sales GROUP BY region HAVING s > 25`),
		"east|30")
	expectRows(t, q(t, c, `SELECT COUNT(*) FROM sales WHERE amount > 100`), "0")
	expectRows(t, q(t, c, `SELECT SUM(amount) FROM sales WHERE amount > 100`), "NULL")
	expectRows(t, q(t, c, `SELECT total(amount) FROM sales WHERE amount > 100`), "0")
	expectRows(t, q(t, c, `SELECT COUNT(DISTINCT region) FROM sales`), "2")
}

func TestBareColumnWithMinMax(t *testing.T) {
	c := testConn(t)
	mustExec(t, c, `CREATE TABLE t (k, v)`)
	mustExec(t, c, `INSERT INTO t VALUES ('a', 1), ('b', 9), ('c', 4)`)
	// SQLite semantics: the bare column comes from the row that holds
	// the extreme.
	expectRows(t, q(t, c, `SELECT k, MAX(v) FROM t`), "b|9")
	expectRows(t, q(t, c, `SELECT k, MIN(v) FROM t`), "a|1")
}

func TestOrderByLimit(t *testing.T) {
	c := testConn(t)
	mustExec(t, c, `CREATE TABLE t (a, b)`)
	mustExec(t, c, `INSERT INTO t VALUES (3, 'c'), (1, 'a'), (2, 'b')`)
	expectRows(t, q(t, c, `SELECT a FROM t ORDER BY a`), "1", "2", "3")
	expectRows(t, q(t, c, `SELECT a FROM t ORDER BY a DESC`), "3", "2", "1")
	expectRows(t, q(t, c, `SELECT a FROM t ORDER BY 1 DESC LIMIT 2`), "3", "2")
	expectRows(t, q(t, c, `SELECT a FROM t ORDER BY a LIMIT 1 OFFSET 1`), "2")
	expectRows(t, q(t, c, `SELECT b FROM t ORDER BY a`), "a", "b", "c")
	// ORDER BY an alias.
	expectRows(t, q(t, c, `SELECT a * 10 AS x FROM t ORDER BY x`), "10", "20", "30")
	// ORDER BY a column not in the projection.
	expectRows(t, q(t, c, `SELECT b FROM t ORDER BY a DESC`), "c", "b", "a")
}

func TestDistinct(t *testing.T) {
	c := testConn(t)
	mustExec(t, c, `CREATE TABLE t (a, b)`)
	mustExec(t, c, `INSERT INTO t VALUES (1, 'x'), (1, 'x'), (2, 'y'), (1, 'z')`)
	expectSet(t, q(t, c, `SELECT DISTINCT a, b FROM t`), "1|x", "2|y", "1|z")
	expectSet(t, q(t, c, `SELECT DISTINCT a FROM t`), "1", "2")
}

func TestJoins(t *testing.T) {
	c := testConn(t)
	mustExec(t, c, `CREATE TABLE dept (id INTEGER PRIMARY KEY, dname TEXT)`)
	mustExec(t, c, `CREATE TABLE emp (name TEXT, dept_id INTEGER)`)
	mustExec(t, c, `INSERT INTO dept VALUES (1, 'eng'), (2, 'ops'), (3, 'empty')`)
	mustExec(t, c, `INSERT INTO emp VALUES ('ann', 1), ('ben', 1), ('cal', 2), ('dee', NULL)`)

	// Comma join with WHERE (the paper's Qq_cpu shape).
	expectSet(t, q(t, c, `SELECT name, dname FROM emp, dept WHERE dept_id = id`),
		"ann|eng", "ben|eng", "cal|ops")
	// Explicit JOIN ... ON.
	expectSet(t, q(t, c, `SELECT name, dname FROM emp JOIN dept ON dept_id = id WHERE dname = 'eng'`),
		"ann|eng", "ben|eng")
	// LEFT JOIN keeps unmatched outer rows.
	expectSet(t, q(t, c, `SELECT name, dname FROM emp LEFT JOIN dept ON dept_id = id`),
		"ann|eng", "ben|eng", "cal|ops", "dee|NULL")
	// Qualified columns and aliases.
	expectSet(t, q(t, c, `SELECT e.name, d.dname FROM emp e, dept d WHERE e.dept_id = d.id AND d.id = 1`),
		"ann|eng", "ben|eng")
	// Three-way self/cross join with filter.
	expectRows(t, q(t, c, `SELECT COUNT(*) FROM emp a, emp b, dept`), fmt.Sprint(4*4*3))
}

func TestJoinUsesNativeIndex(t *testing.T) {
	c := testConn(t)
	mustExec(t, c, `CREATE TABLE big (k INTEGER, payload TEXT)`)
	mustExec(t, c, `CREATE INDEX big_k ON big (k)`)
	mustExec(t, c, `CREATE TABLE probe (k INTEGER)`)
	for i := 0; i < 50; i++ {
		mustExec(t, c, fmt.Sprintf(`INSERT INTO big VALUES (%d, 'p%d')`, i, i))
	}
	mustExec(t, c, `INSERT INTO probe VALUES (7), (13)`)
	expectSet(t, q(t, c, `SELECT payload FROM probe, big WHERE probe.k = big.k`), "p7", "p13")
	// The native-index path must not record auto-index time.
	if c.LastStats().AutoIndex != 0 {
		t.Errorf("native index join recorded AutoIndex=%v", c.LastStats().AutoIndex)
	}

	// Without the index, the transient index (hash) path is used and timed.
	mustExec(t, c, `DROP INDEX big_k`)
	expectSet(t, q(t, c, `SELECT payload FROM probe, big WHERE probe.k = big.k`), "p7", "p13")
	if c.LastStats().AutoIndex == 0 {
		t.Errorf("auto-index join did not record AutoIndex time")
	}
}

func TestIndexedPointAndRangeScans(t *testing.T) {
	c := testConn(t)
	mustExec(t, c, `CREATE TABLE t (a INTEGER, b TEXT)`)
	mustExec(t, c, `CREATE INDEX t_a ON t (a)`)
	for i := 0; i < 100; i++ {
		mustExec(t, c, fmt.Sprintf(`INSERT INTO t VALUES (%d, 'v%d')`, i, i))
	}
	expectRows(t, q(t, c, `SELECT b FROM t WHERE a = 42`), "v42")
	expectRows(t, q(t, c, `SELECT COUNT(*) FROM t WHERE a >= 90`), "10")
	expectRows(t, q(t, c, `SELECT COUNT(*) FROM t WHERE a > 90`), "9")
	expectRows(t, q(t, c, `SELECT COUNT(*) FROM t WHERE a < 10 AND a >= 5`), "5")
	expectRows(t, q(t, c, `SELECT b FROM t WHERE a = -1`))
}

func TestUniqueIndex(t *testing.T) {
	c := testConn(t)
	mustExec(t, c, `CREATE TABLE t (a, b)`)
	mustExec(t, c, `CREATE UNIQUE INDEX t_a ON t (a)`)
	mustExec(t, c, `INSERT INTO t VALUES (1, 'x')`)
	err := c.Exec(`INSERT INTO t VALUES (1, 'y')`, nil)
	if !errors.Is(err, ErrUniqueIndex) {
		t.Errorf("duplicate insert: %v", err)
	}
	// The failed statement must not leave partial state.
	expectRows(t, q(t, c, `SELECT COUNT(*) FROM t`), "1")
	mustExec(t, c, `INSERT INTO t VALUES (2, 'y')`)
}

func TestPrimaryKeys(t *testing.T) {
	c := testConn(t)
	mustExec(t, c, `CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT PRIMARY KEY)`)
	mustExec(t, c, `INSERT INTO t VALUES (10, 'a')`)
	mustExec(t, c, `INSERT INTO t (name) VALUES ('b')`)
	expectSet(t, q(t, c, `SELECT id, name FROM t`), "10|a", "11|b")
	if err := c.Exec(`INSERT INTO t VALUES (10, 'c')`, nil); !errors.Is(err, ErrUniqueIndex) {
		t.Errorf("duplicate rowid alias: %v", err)
	}
	if err := c.Exec(`INSERT INTO t VALUES (12, 'a')`, nil); !errors.Is(err, ErrUniqueIndex) {
		t.Errorf("duplicate text pk: %v", err)
	}
}

func TestNotNull(t *testing.T) {
	c := testConn(t)
	mustExec(t, c, `CREATE TABLE t (a TEXT NOT NULL)`)
	if err := c.Exec(`INSERT INTO t VALUES (NULL)`, nil); !errors.Is(err, ErrNotNull) {
		t.Errorf("NULL into NOT NULL: %v", err)
	}
}

func TestAffinity(t *testing.T) {
	c := testConn(t)
	mustExec(t, c, `CREATE TABLE t (i INTEGER, r REAL, s TEXT)`)
	mustExec(t, c, `INSERT INTO t VALUES ('42', '2.5', 99)`)
	expectRows(t, q(t, c, `SELECT typeof(i), typeof(r), typeof(s) FROM t`), "integer|real|text")
	expectRows(t, q(t, c, `SELECT i + 1, r * 2, s || '!' FROM t`), "43|5|99!")
}

func TestSubqueryInFrom(t *testing.T) {
	c := testConn(t)
	mustExec(t, c, `CREATE TABLE t (a, b)`)
	mustExec(t, c, `INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)`)
	expectRows(t, q(t, c, `SELECT s FROM (SELECT a, a + b AS s FROM t) sub WHERE sub.a > 1 ORDER BY s`),
		"22", "33")
	expectRows(t, q(t, c, `SELECT COUNT(*) FROM (SELECT DISTINCT a FROM t)`), "3")
}

func TestDropTable(t *testing.T) {
	c := testConn(t)
	mustExec(t, c, `CREATE TABLE t (a)`)
	mustExec(t, c, `CREATE INDEX t_a ON t (a)`)
	mustExec(t, c, `INSERT INTO t VALUES (1)`)
	mustExec(t, c, `DROP TABLE t`)
	if err := c.Exec(`SELECT * FROM t`, nil); !errors.Is(err, ErrNoTable) {
		t.Errorf("select from dropped table: %v", err)
	}
	mustExec(t, c, `DROP TABLE IF EXISTS t`)
	if err := c.Exec(`DROP TABLE t`, nil); !errors.Is(err, ErrNoTable) {
		t.Errorf("drop missing table: %v", err)
	}
	// Name can be reused.
	mustExec(t, c, `CREATE TABLE t (x)`)
	mustExec(t, c, `INSERT INTO t VALUES (9)`)
	expectRows(t, q(t, c, `SELECT x FROM t`), "9")
}

func TestCreateTableAsSelect(t *testing.T) {
	c := testConn(t)
	mustExec(t, c, `CREATE TABLE src (a, b)`)
	mustExec(t, c, `INSERT INTO src VALUES (1, 'x'), (2, 'y')`)
	mustExec(t, c, `CREATE TABLE dst AS SELECT a * 10 AS a10, b FROM src`)
	expectSet(t, q(t, c, `SELECT a10, b FROM dst`), "10|x", "20|y")
}

func TestInsertFromSelect(t *testing.T) {
	c := testConn(t)
	mustExec(t, c, `CREATE TABLE a (x)`)
	mustExec(t, c, `CREATE TABLE b (x)`)
	mustExec(t, c, `INSERT INTO a VALUES (1), (2)`)
	mustExec(t, c, `INSERT INTO b SELECT x * 100 FROM a`)
	expectSet(t, q(t, c, `SELECT x FROM b`), "100", "200")
	// Self-referencing insert materializes the source first.
	mustExec(t, c, `INSERT INTO a SELECT x FROM a`)
	expectRows(t, q(t, c, `SELECT COUNT(*) FROM a`), "4")
}

func TestTempTablesShadowAndDoNotSnapshot(t *testing.T) {
	c := testConn(t)
	mustExec(t, c, `CREATE TABLE t (a)`)
	mustExec(t, c, `INSERT INTO t VALUES ('main')`)
	mustExec(t, c, `CREATE TEMP TABLE t2 (a)`)
	mustExec(t, c, `INSERT INTO t2 VALUES ('temp')`)
	expectRows(t, q(t, c, `SELECT a FROM t2`), "temp")

	// Declare a snapshot; then modify both tables.
	mustExec(t, c, `BEGIN; COMMIT WITH SNAPSHOT`)
	snap := c.LastSnapshot()
	if snap != 1 {
		t.Fatalf("snapshot id = %d", snap)
	}
	mustExec(t, c, `INSERT INTO t VALUES ('after')`)
	mustExec(t, c, `INSERT INTO t2 VALUES ('after')`)

	// AS OF sees the main table at the snapshot but the side store is
	// non-snapshotable: its current contents are visible.
	expectRows(t, q(t, c, fmt.Sprintf(`SELECT AS OF %d a FROM t`, snap)), "main")
	rows, err := c.Query(fmt.Sprintf(`SELECT AS OF %d a FROM t2 ORDER BY a`, snap))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Rows) != 2 {
		t.Errorf("temp table under AS OF should show current rows, got %v", rows.Rows)
	}
}

func TestSnapshotQueries(t *testing.T) {
	c := testConn(t)
	mustExec(t, c, `CREATE TABLE logged_in (l_userid TEXT, l_time TEXT, l_country TEXT)`)

	// The paper's Figure 3 script.
	mustExec(t, c, `INSERT INTO logged_in VALUES
		('UserA', '2008-11-09 13:23:44', 'USA'),
		('UserB', '2008-11-09 15:45:21', 'UK'),
		('UserC', '2008-11-09 15:45:21', 'USA')`)
	mustExec(t, c, `BEGIN; COMMIT WITH SNAPSHOT`)                                                 // S1
	mustExec(t, c, `BEGIN; DELETE FROM logged_in WHERE l_userid = 'UserA'; COMMIT WITH SNAPSHOT`) // S2
	mustExec(t, c, `BEGIN;
		INSERT INTO logged_in (l_userid, l_time, l_country) VALUES ('UserD', '2008-11-11 10:08:04', 'UK');
		COMMIT WITH SNAPSHOT`) // S3

	expectSet(t, q(t, c, `SELECT AS OF 1 l_userid FROM logged_in`), "UserA", "UserB", "UserC")
	expectSet(t, q(t, c, `SELECT AS OF 2 l_userid FROM logged_in`), "UserB", "UserC")
	expectSet(t, q(t, c, `SELECT AS OF 3 l_userid FROM logged_in`), "UserB", "UserC", "UserD")
	expectSet(t, q(t, c, `SELECT l_userid FROM logged_in`), "UserB", "UserC", "UserD")

	// current_snapshot() resolves inside AS OF queries and is NULL outside.
	expectRows(t, q(t, c, `SELECT AS OF 2 DISTINCT current_snapshot() FROM logged_in`), "2")
	expectRows(t, q(t, c, `SELECT current_snapshot()`), "NULL")

	// ExecAsOf binds SELECTs like an AS OF rewrite (paper §3).
	var ids []string
	err := c.ExecAsOf(`SELECT l_userid FROM logged_in WHERE l_userid = 'UserA'`, 1,
		func(cols []string, row []record.Value) error {
			ids = append(ids, row[0].String())
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != "UserA" {
		t.Errorf("ExecAsOf: %v", ids)
	}

	// Writes under a snapshot binding are rejected.
	if err := c.ExecAsOf(`INSERT INTO logged_in VALUES ('x','y','z')`, 1, nil); !errors.Is(err, ErrReadOnly) {
		t.Errorf("write under AS OF: %v", err)
	}
	// AS OF over a missing snapshot fails cleanly.
	if err := c.Exec(`SELECT AS OF 99 * FROM logged_in`, nil); !errors.Is(err, retro.ErrNoSnapshot) {
		t.Errorf("AS OF 99: %v", err)
	}
}

func TestSnapshotSeesSchemaAsOf(t *testing.T) {
	c := testConn(t)
	mustExec(t, c, `CREATE TABLE a (x)`)
	mustExec(t, c, `INSERT INTO a VALUES (1)`)
	mustExec(t, c, `BEGIN; COMMIT WITH SNAPSHOT`) // S1
	mustExec(t, c, `CREATE TABLE b (y)`)
	mustExec(t, c, `DROP TABLE a`)
	mustExec(t, c, `BEGIN; COMMIT WITH SNAPSHOT`) // S2

	// Snapshot 1: table a exists, b does not.
	expectRows(t, q(t, c, `SELECT AS OF 1 x FROM a`), "1")
	if err := c.Exec(`SELECT AS OF 1 y FROM b`, nil); !errors.Is(err, ErrNoTable) {
		t.Errorf("b should not exist in snapshot 1: %v", err)
	}
	// Snapshot 2: reversed.
	if err := c.Exec(`SELECT AS OF 2 x FROM a`, nil); !errors.Is(err, ErrNoTable) {
		t.Errorf("a should not exist in snapshot 2: %v", err)
	}
	expectRows(t, q(t, c, `SELECT AS OF 2 COUNT(*) FROM b`), "0")
}

func TestExplicitTransactions(t *testing.T) {
	c := testConn(t)
	mustExec(t, c, `CREATE TABLE t (a)`)
	mustExec(t, c, `BEGIN`)
	mustExec(t, c, `INSERT INTO t VALUES (1)`)
	// Uncommitted writes visible within the transaction.
	expectRows(t, q(t, c, `SELECT COUNT(*) FROM t`), "1")
	mustExec(t, c, `ROLLBACK`)
	expectRows(t, q(t, c, `SELECT COUNT(*) FROM t`), "0")

	mustExec(t, c, `BEGIN`)
	mustExec(t, c, `INSERT INTO t VALUES (2)`)
	mustExec(t, c, `COMMIT`)
	expectRows(t, q(t, c, `SELECT a FROM t`), "2")

	if err := c.Exec(`COMMIT`, nil); !errors.Is(err, ErrNoTx) {
		t.Errorf("commit without begin: %v", err)
	}
	mustExec(t, c, `BEGIN`)
	if err := c.Exec(`BEGIN`, nil); !errors.Is(err, ErrTxOpen) {
		t.Errorf("nested begin: %v", err)
	}
	mustExec(t, c, `ROLLBACK`)
}

func TestUDFRegistrationAndAux(t *testing.T) {
	c := testConn(t)
	mustExec(t, c, `CREATE TABLE t (a)`)
	mustExec(t, c, `INSERT INTO t VALUES (1), (2), (3)`)

	// A UDF that counts its invocations within one statement via Aux.
	c.db.RegisterFunc(FuncDef{
		Name: "invocation_no", MinArgs: 0, MaxArgs: 0,
		Fn: func(fc *FuncContext, _ []record.Value) (record.Value, error) {
			n := fc.Aux(func() any { return new(int) }).(*int)
			*n++
			return record.Int(int64(*n)), nil
		},
	})
	expectRows(t, q(t, c, `SELECT invocation_no() FROM t`), "1", "2", "3")
	// Fresh statement, fresh state.
	expectRows(t, q(t, c, `SELECT invocation_no() FROM t`), "1", "2", "3")

	// A UDF that executes nested SQL through its connection (the
	// sqlite3_exec pattern the RQL mechanisms are built on).
	c.db.RegisterFunc(FuncDef{
		Name: "record_row", MinArgs: 1, MaxArgs: 1,
		Fn: func(fc *FuncContext, args []record.Value) (record.Value, error) {
			err := fc.Conn().Exec(`INSERT INTO side_log VALUES (?)`, nil, args[0])
			return record.Int(1), err
		},
	})
	mustExec(t, c, `CREATE TEMP TABLE side_log (v)`)
	mustExec(t, c, `SELECT record_row(a) FROM t`)
	expectSet(t, q(t, c, `SELECT v FROM side_log`), "1", "2", "3")

	if err := c.Exec(`SELECT no_such_fn(1)`, nil); err == nil ||
		!strings.Contains(err.Error(), "no such function") {
		t.Errorf("unknown function: %v", err)
	}
}

func TestMultiStatementExec(t *testing.T) {
	c := testConn(t)
	mustExec(t, c, `CREATE TABLE t (a); INSERT INTO t VALUES (1); INSERT INTO t VALUES (2);`)
	expectRows(t, q(t, c, `SELECT COUNT(*) FROM t`), "2")
}

func TestRowCallbackAbort(t *testing.T) {
	c := testConn(t)
	mustExec(t, c, `CREATE TABLE t (a)`)
	mustExec(t, c, `INSERT INTO t VALUES (1), (2), (3)`)
	stop := errors.New("stop")
	n := 0
	err := c.Exec(`SELECT a FROM t`, func(cols []string, row []record.Value) error {
		n++
		if n == 2 {
			return stop
		}
		return nil
	})
	if !errors.Is(err, stop) || n != 2 {
		t.Errorf("callback abort: err=%v n=%d", err, n)
	}
}

func TestBulkInsert(t *testing.T) {
	c := testConn(t)
	mustExec(t, c, `CREATE TABLE t (a INTEGER, b TEXT)`)
	rows := make([][]record.Value, 1000)
	for i := range rows {
		rows[i] = []record.Value{record.Int(int64(i)), record.Text(fmt.Sprintf("r%d", i))}
	}
	if err := c.BulkInsert("t", rows); err != nil {
		t.Fatal(err)
	}
	expectRows(t, q(t, c, `SELECT COUNT(*), MIN(a), MAX(a) FROM t`), "1000|0|999")
}

func TestColumnNameOutput(t *testing.T) {
	c := testConn(t)
	mustExec(t, c, `CREATE TABLE t (a, b)`)
	mustExec(t, c, `INSERT INTO t VALUES (1, 2)`)
	rows, err := c.Query(`SELECT a, b AS bee, a + b, COUNT(*) AS cnt FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "bee", "a + b", "cnt"}
	for i, w := range want {
		if rows.Cols[i] != w {
			t.Errorf("col %d: %q want %q", i, rows.Cols[i], w)
		}
	}
}

func TestParseErrors(t *testing.T) {
	c := testConn(t)
	bad := []string{
		``,
		`SELEC 1`,
		`SELECT FROM`,
		`SELECT 'unterminated`,
		`SELECT 1 +`,
		`INSERT INTO`,
		`CREATE TABLE t (`,
		`SELECT * FROM t WHERE`,
		`SELECT CASE END`,
		`DROP banana t`,
	}
	for _, sql := range bad {
		if err := c.Exec(sql, nil); err == nil {
			t.Errorf("no error for %q", sql)
		}
	}
}

func TestSemanticErrors(t *testing.T) {
	c := testConn(t)
	mustExec(t, c, `CREATE TABLE t (a)`)
	cases := []string{
		`SELECT nope FROM t`,
		`SELECT * FROM missing`,
		`SELECT t.a, x.a FROM t`,
		`INSERT INTO t (nope) VALUES (1)`,
		`INSERT INTO t VALUES (1, 2)`,
		`UPDATE t SET nope = 1`,
		`CREATE INDEX i ON t (nope)`,
		`CREATE TABLE t (b)`,
		`SELECT MAX(MIN(a)) FROM t`,
		`SELECT a FROM t ORDER BY 5`,
		`SELECT a FROM t GROUP BY 5`,
	}
	for _, sql := range cases {
		if err := c.Exec(sql, nil); err == nil {
			t.Errorf("no error for %q", sql)
		}
	}
}

func TestStatsReporting(t *testing.T) {
	c := testConn(t)
	mustExec(t, c, `CREATE TABLE t (a)`)
	for i := 0; i < 200; i++ {
		mustExec(t, c, fmt.Sprintf(`INSERT INTO t VALUES (%d)`, i))
	}
	mustExec(t, c, `BEGIN; COMMIT WITH SNAPSHOT`)
	mustExec(t, c, `DELETE FROM t WHERE a < 100`) // push pages to the Pagelog
	c.db.Retro().ResetCache()

	mustExec(t, c, `SELECT AS OF 1 COUNT(*) FROM t`)
	st := c.LastStats()
	if st.PagelogReads == 0 {
		t.Errorf("cold AS OF scan should read the Pagelog: %+v", st)
	}
	if st.RowsReturned != 1 {
		t.Errorf("RowsReturned = %d", st.RowsReturned)
	}
	if st.Duration <= 0 {
		t.Errorf("Duration not measured")
	}

	// A warm re-run hits the snapshot cache instead.
	mustExec(t, c, `SELECT AS OF 1 COUNT(*) FROM t`)
	st2 := c.LastStats()
	if st2.PagelogReads != 0 || st2.CacheHits == 0 {
		t.Errorf("warm AS OF scan: %+v", st2)
	}
}

func TestAggregateMixedNumericAndNulls(t *testing.T) {
	c := testConn(t)
	mustExec(t, c, `CREATE TABLE t (v)`)
	mustExec(t, c, `INSERT INTO t VALUES (1), (2.5), (NULL), (3)`)
	expectRows(t, q(t, c, `SELECT SUM(v), COUNT(v), COUNT(*), AVG(v), MIN(v), MAX(v) FROM t`),
		"6.5|3|4|2.1666666666666665|1|3")
	// Integer-only SUM stays an integer.
	mustExec(t, c, `CREATE TABLE i (v)`)
	mustExec(t, c, `INSERT INTO i VALUES (1), (2)`)
	expectRows(t, q(t, c, `SELECT typeof(SUM(v)) FROM i`), "integer")
	// Float appears -> SUM turns real; total() is always real.
	mustExec(t, c, `INSERT INTO i VALUES (0.5)`)
	expectRows(t, q(t, c, `SELECT typeof(SUM(v)), typeof(total(v)) FROM i`), "real|real")
}

func TestNullComparisonSemantics(t *testing.T) {
	c := testConn(t)
	cases := map[string]string{
		`SELECT NULL IN (1, 2)`:       "NULL",
		`SELECT 1 IN (NULL)`:          "NULL",
		`SELECT 1 IN (1, NULL)`:       "1",
		`SELECT 1 NOT IN (2, NULL)`:   "NULL",
		`SELECT NULL BETWEEN 1 AND 2`: "NULL",
		`SELECT NULL LIKE 'x'`:        "NULL",
		`SELECT 'x' LIKE NULL`:        "NULL",
		`SELECT NULL || 'x'`:          "NULL",
		`SELECT -NULL`:                "NULL",
		`SELECT NOT NULL`:             "NULL",
		`SELECT NULL + 1`:             "NULL",
	}
	for sql, want := range cases {
		got := q(t, c, sql)
		if len(got) != 1 || got[0] != want {
			t.Errorf("%s = %v, want %s", sql, got, want)
		}
	}
	// WHERE treats NULL as not-true.
	mustExec(t, c, `CREATE TABLE t (v)`)
	mustExec(t, c, `INSERT INTO t VALUES (NULL), (1)`)
	expectRows(t, q(t, c, `SELECT COUNT(*) FROM t WHERE v`), "1")
}

func TestGroupByOrdinalAndAlias(t *testing.T) {
	c := testConn(t)
	mustExec(t, c, `CREATE TABLE t (a, b)`)
	mustExec(t, c, `INSERT INTO t VALUES (1, 10), (1, 20), (2, 30)`)
	expectSet(t, q(t, c, `SELECT a * 10 AS tens, SUM(b) FROM t GROUP BY 1`), "10|30", "20|30")
	expectSet(t, q(t, c, `SELECT a AS k, COUNT(*) FROM t GROUP BY k`), "1|2", "2|1")
}

func TestHavingWithoutSelectAggregate(t *testing.T) {
	c := testConn(t)
	mustExec(t, c, `CREATE TABLE t (g, v)`)
	mustExec(t, c, `INSERT INTO t VALUES ('a', 1), ('a', 2), ('b', 3)`)
	expectRows(t, q(t, c, `SELECT g FROM t GROUP BY g HAVING COUNT(*) > 1`), "a")
	// ORDER BY an aggregate not in the projection.
	expectRows(t, q(t, c, `SELECT g FROM t GROUP BY g ORDER BY SUM(v) DESC`), "a", "b")
}

func TestCaseInsensitiveNames(t *testing.T) {
	c := testConn(t)
	mustExec(t, c, `CREATE TABLE Users (Name TEXT)`)
	mustExec(t, c, `INSERT INTO USERS (NAME) VALUES ('x')`)
	expectRows(t, q(t, c, `select name from users`), "x")
	expectRows(t, q(t, c, `SELECT uSeRs.NaMe FROM Users`), "x")
}

func TestLimitWithoutOrderStreams(t *testing.T) {
	c := testConn(t)
	mustExec(t, c, `CREATE TABLE t (a)`)
	for i := 0; i < 10; i++ {
		mustExec(t, c, fmt.Sprintf(`INSERT INTO t VALUES (%d)`, i))
	}
	got := q(t, c, `SELECT a FROM t LIMIT 3 OFFSET 2`)
	if len(got) != 3 || got[0] != "2" {
		t.Errorf("streamed limit/offset: %v", got)
	}
	expectRows(t, q(t, c, `SELECT a FROM t LIMIT 0`))
}

func TestExplain(t *testing.T) {
	c := testConn(t)
	mustExec(t, c, `CREATE TABLE big (k INTEGER, v TEXT)`)
	mustExec(t, c, `CREATE TABLE probe (k INTEGER)`)
	mustExec(t, c, `INSERT INTO probe VALUES (1)`)
	mustExec(t, c, `INSERT INTO big VALUES (1, 'x')`)

	plan := strings.Join(q(t, c, `EXPLAIN SELECT v FROM probe, big WHERE probe.k = big.k AND v = 'x'`), "\n")
	if !strings.Contains(plan, "AUTOMATIC COVERING INDEX") {
		t.Errorf("plan should use the automatic index:\n%s", plan)
	}
	mustExec(t, c, `CREATE INDEX big_k ON big (k)`)
	plan = strings.Join(q(t, c, `EXPLAIN SELECT v FROM probe, big WHERE probe.k = big.k`), "\n")
	if !strings.Contains(plan, "NATIVE INDEX big_k") {
		t.Errorf("plan should use the native index:\n%s", plan)
	}
	plan = strings.Join(q(t, c, `EXPLAIN SELECT k, COUNT(*) FROM big WHERE k = 1 GROUP BY k ORDER BY k LIMIT 5`), "\n")
	for _, want := range []string{"AGGREGATE", "SORT + LIMIT", "SEARCH TABLE big USING INDEX (EQUALITY)"} {
		if !strings.Contains(plan, want) {
			t.Errorf("plan missing %q:\n%s", want, plan)
		}
	}
	plan = strings.Join(q(t, c, `EXPLAIN SELECT DISTINCT v FROM big`), "\n")
	if !strings.Contains(plan, "DISTINCT") || !strings.Contains(plan, "SCAN TABLE") {
		t.Errorf("distinct plan:\n%s", plan)
	}
	plan = strings.Join(q(t, c, `EXPLAIN SELECT 1`), "\n")
	if !strings.Contains(plan, "CONSTANT ROW") {
		t.Errorf("constant plan:\n%s", plan)
	}
}

func TestExplainAnalyze(t *testing.T) {
	c := testConn(t)
	mustExec(t, c, `CREATE TABLE big (k INTEGER, v TEXT)`)
	mustExec(t, c, `INSERT INTO big VALUES (1, 'x'), (2, 'y'), (3, 'z')`)

	report := q(t, c, `EXPLAIN ANALYZE SELECT v FROM big WHERE k > 1`)
	joined := strings.Join(report, "\n")
	if !strings.Contains(joined, "SCAN TABLE") {
		t.Errorf("report misses the plan:\n%s", joined)
	}
	if !strings.Contains(joined, "EXECUTED rows=2") {
		t.Errorf("report misses the execution summary:\n%s", joined)
	}
	// LastStats reports the executed statement's own rows — identical to
	// a plain run — not the report lines streamed to the client.
	if got := c.LastStats().RowsReturned; got != 2 {
		t.Errorf("LastStats().RowsReturned = %d, want 2", got)
	}
	if strings.Contains(joined, "MECHANISM") {
		t.Errorf("no mechanism ran, but the report says one did:\n%s", joined)
	}

	// Lower-case and mixed-case forms parse; ANALYZE stays usable as an
	// ordinary identifier since it is not reserved.
	if _, err := c.Query(`explain analyze select 1`); err != nil {
		t.Fatalf("lower-case explain analyze: %v", err)
	}
	mustExec(t, c, `CREATE TABLE analyze (analyze INTEGER)`)
	mustExec(t, c, `INSERT INTO analyze VALUES (7)`)
	expectRows(t, q(t, c, `SELECT analyze FROM analyze`), "7")
}
