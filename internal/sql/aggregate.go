package sql

import (
	"fmt"

	"rql/internal/record"
)

// isAggregateName reports whether name is a SQL aggregate function.
func isAggregateName(name string) bool {
	switch name {
	case "count", "sum", "avg", "min", "max", "total":
		return true
	}
	return false
}

// isAggregateCall reports whether a specific call uses a function as an
// aggregate. min() and max() follow SQLite's dual nature: with one
// argument they aggregate, with several they are scalar.
func isAggregateCall(x *FuncCall) bool {
	if !isAggregateName(x.Name) {
		return false
	}
	if x.Name == "min" || x.Name == "max" {
		return len(x.Args) == 1
	}
	return true
}

// aggState accumulates one aggregate over one group.
type aggState interface {
	// step consumes one input value. For count(*) the value is ignored.
	// It reports whether this value became the aggregate's current
	// extreme (used for SQLite's bare-column-from-the-min/max-row rule).
	step(v record.Value) bool
	final() record.Value
}

func newAggState(name string) (aggState, error) {
	switch name {
	case "count":
		return &countState{}, nil
	case "sum":
		return &sumState{}, nil
	case "total":
		return &sumState{total: true}, nil
	case "avg":
		return &avgState{}, nil
	case "min":
		return &minMaxState{min: true}, nil
	case "max":
		return &minMaxState{}, nil
	}
	return nil, fmt.Errorf("sql: unknown aggregate %s", name)
}

type countState struct{ n int64 }

func (s *countState) step(v record.Value) bool {
	if !v.IsNull() {
		s.n++
	}
	return false
}
func (s *countState) final() record.Value { return record.Int(s.n) }

// sumState implements SUM (NULL over empty input, integer arithmetic
// while all inputs are integers) and TOTAL (always float, 0.0 empty).
type sumState struct {
	total   bool
	seen    bool
	isFloat bool
	i       int64
	f       float64
}

func (s *sumState) step(v record.Value) bool {
	if v.IsNull() {
		return false
	}
	s.seen = true
	if !s.isFloat && v.Type() == record.TypeInt {
		s.i += v.Int()
		return false
	}
	if !s.isFloat {
		s.isFloat = true
		s.f = float64(s.i)
	}
	s.f += v.AsFloat()
	return false
}

func (s *sumState) final() record.Value {
	if s.total {
		if s.isFloat {
			return record.Float(s.f)
		}
		return record.Float(float64(s.i))
	}
	if !s.seen {
		return record.Null()
	}
	if s.isFloat {
		return record.Float(s.f)
	}
	return record.Int(s.i)
}

type avgState struct {
	n   int64
	sum float64
}

func (s *avgState) step(v record.Value) bool {
	if v.IsNull() {
		return false
	}
	s.n++
	s.sum += v.AsFloat()
	return false
}

func (s *avgState) final() record.Value {
	if s.n == 0 {
		return record.Null()
	}
	return record.Float(s.sum / float64(s.n))
}

type minMaxState struct {
	min  bool
	seen bool
	best record.Value
}

func (s *minMaxState) step(v record.Value) bool {
	if v.IsNull() {
		return false
	}
	if !s.seen {
		s.seen = true
		s.best = v
		return true
	}
	c := record.Compare(v, s.best)
	if (s.min && c < 0) || (!s.min && c > 0) {
		s.best = v
		return true
	}
	return false
}

func (s *minMaxState) final() record.Value {
	if !s.seen {
		return record.Null()
	}
	return s.best
}

// distinctAgg wraps an aggregate to apply it over distinct inputs
// (COUNT(DISTINCT x) and friends).
type distinctAgg struct {
	inner aggState
	seen  map[string]bool
}

func newDistinctAgg(inner aggState) *distinctAgg {
	return &distinctAgg{inner: inner, seen: make(map[string]bool)}
}

func (d *distinctAgg) step(v record.Value) bool {
	if v.IsNull() {
		return false
	}
	key := string(record.EncodeKey(nil, []record.Value{v}))
	if d.seen[key] {
		return false
	}
	d.seen[key] = true
	return d.inner.step(v)
}

func (d *distinctAgg) final() record.Value { return d.inner.final() }

// collectAggregates walks an expression tree collecting aggregate
// function calls (they cannot nest; nesting is reported as an error).
func collectAggregates(e Expr, into *[]*FuncCall) error {
	switch x := e.(type) {
	case nil, *Literal, *ColumnRef, *ParamRef:
		return nil
	case *UnaryExpr:
		return collectAggregates(x.X, into)
	case *BinaryExpr:
		if err := collectAggregates(x.L, into); err != nil {
			return err
		}
		return collectAggregates(x.R, into)
	case *IsNullExpr:
		return collectAggregates(x.X, into)
	case *BetweenExpr:
		for _, sub := range []Expr{x.X, x.Lo, x.Hi} {
			if err := collectAggregates(sub, into); err != nil {
				return err
			}
		}
		return nil
	case *InExpr:
		if err := collectAggregates(x.X, into); err != nil {
			return err
		}
		for _, it := range x.List {
			if err := collectAggregates(it, into); err != nil {
				return err
			}
		}
		return nil
	case *LikeExpr:
		if err := collectAggregates(x.X, into); err != nil {
			return err
		}
		return collectAggregates(x.Pattern, into)
	case *CaseExpr:
		if err := collectAggregates(x.Operand, into); err != nil {
			return err
		}
		for _, w := range x.Whens {
			if err := collectAggregates(w.Cond, into); err != nil {
				return err
			}
			if err := collectAggregates(w.Result, into); err != nil {
				return err
			}
		}
		return collectAggregates(x.Else, into)
	case *FuncCall:
		if isAggregateCall(x) {
			var nested []*FuncCall
			for _, a := range x.Args {
				if err := collectAggregates(a, &nested); err != nil {
					return err
				}
			}
			if len(nested) > 0 {
				return fmt.Errorf("sql: aggregate functions cannot nest")
			}
			*into = append(*into, x)
			return nil
		}
		for _, a := range x.Args {
			if err := collectAggregates(a, into); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("sql: collectAggregates: unknown expression %T", e)
}
