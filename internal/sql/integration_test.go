package sql

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// TestSnapshotShadowEquivalence drives a random SQL workload (inserts,
// updates, deletes, index DDL) declaring snapshots along the way, and
// records a shadow copy of several query results at each declaration.
// Every snapshot's AS OF results must reproduce the shadow exactly —
// the retrospection property, end to end through parser, planner,
// executor, btree, MVCC, COW capture, Maplog/Skippy and Pagelog.
func TestSnapshotShadowEquivalence(t *testing.T) {
	c := testConn(t)
	mustExec(t, c, `CREATE TABLE acct (id INTEGER PRIMARY KEY, owner TEXT, amount INTEGER)`)

	probes := []string{
		`SELECT id, owner, amount FROM acct ORDER BY id`,
		`SELECT owner, COUNT(*), SUM(amount) FROM acct GROUP BY owner ORDER BY owner`,
		`SELECT COUNT(*) FROM acct WHERE amount > 500`,
	}
	snapshot := func(sql string) []string {
		rows := q(t, c, sql)
		return rows
	}

	rng := rand.New(rand.NewSource(77))
	owners := []string{"ann", "ben", "cal", "dee"}
	nextID := 1
	live := map[int]bool{}

	type shadow struct {
		snap    uint64
		results [][]string
	}
	var shadows []shadow

	for step := 0; step < 120; step++ {
		mustExec(t, c, `BEGIN`)
		for n := rng.Intn(5); n >= 0; n-- {
			switch rng.Intn(5) {
			case 0, 1: // insert
				mustExec(t, c, fmt.Sprintf(
					`INSERT INTO acct (id, owner, amount) VALUES (%d, '%s', %d)`,
					nextID, owners[rng.Intn(len(owners))], rng.Intn(1000)))
				live[nextID] = true
				nextID++
			case 2: // update a random live row
				if id := pickLive(rng, live); id != 0 {
					mustExec(t, c, fmt.Sprintf(
						`UPDATE acct SET amount = %d WHERE id = %d`, rng.Intn(1000), id))
				}
			case 3: // delete
				if id := pickLive(rng, live); id != 0 {
					mustExec(t, c, fmt.Sprintf(`DELETE FROM acct WHERE id = %d`, id))
					delete(live, id)
				}
			case 4: // occasional schema churn inside the history
				if step == 40 {
					mustExec(t, c, `CREATE INDEX acct_owner ON acct (owner)`)
				}
			}
		}
		if rng.Intn(3) == 0 {
			id, err := c.CommitWithSnapshot()
			if err != nil {
				t.Fatal(err)
			}
			sh := shadow{snap: id}
			for _, p := range probes {
				sh.results = append(sh.results, snapshot(p))
			}
			shadows = append(shadows, sh)
		} else {
			mustExec(t, c, `COMMIT`)
		}
	}
	if len(shadows) < 10 {
		t.Fatalf("only %d snapshots declared", len(shadows))
	}

	// Validate every snapshot, cold and then warm.
	for pass := 0; pass < 2; pass++ {
		if pass == 0 {
			c.db.Retro().ResetCache()
		}
		for _, sh := range shadows {
			for pi, p := range probes {
				asOf := strings.Replace(p, "SELECT ", fmt.Sprintf("SELECT AS OF %d ", sh.snap), 1)
				got := q(t, c, asOf)
				if strings.Join(got, ";") != strings.Join(sh.results[pi], ";") {
					t.Fatalf("pass %d snap %d probe %d:\ngot  %v\nwant %v",
						pass, sh.snap, pi, got, sh.results[pi])
				}
			}
		}
	}
}

func pickLive(rng *rand.Rand, live map[int]bool) int {
	if len(live) == 0 {
		return 0
	}
	ids := make([]int, 0, len(live))
	for id := range live {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids[rng.Intn(len(ids))]
}

// TestSnapshotQueriesUseHistoricalIndexes checks that an index created
// mid-history is used (and usable) only in snapshots that contain it.
func TestSnapshotQueriesUseHistoricalIndexes(t *testing.T) {
	c := testConn(t)
	mustExec(t, c, `CREATE TABLE t (a INTEGER, b TEXT)`)
	for i := 0; i < 200; i++ {
		mustExec(t, c, fmt.Sprintf(`INSERT INTO t VALUES (%d, 'v%d')`, i, i))
	}
	mustExec(t, c, `BEGIN; COMMIT WITH SNAPSHOT`) // S1: no index
	mustExec(t, c, `CREATE INDEX t_a ON t (a)`)
	mustExec(t, c, `BEGIN; COMMIT WITH SNAPSHOT`) // S2: index exists
	mustExec(t, c, `DELETE FROM t WHERE a >= 100`)

	// Both snapshots answer point queries correctly regardless of the
	// access path available to them.
	expectRows(t, q(t, c, `SELECT AS OF 1 b FROM t WHERE a = 150`), "v150")
	expectRows(t, q(t, c, `SELECT AS OF 2 b FROM t WHERE a = 150`), "v150")
	expectRows(t, q(t, c, `SELECT b FROM t WHERE a = 150`))

	// And the index in snapshot 2 reflects snapshot-2 contents, not the
	// current (post-delete) state.
	expectRows(t, q(t, c, `SELECT AS OF 2 COUNT(*) FROM t WHERE a >= 100`), "100")
}

// TestConcurrentSnapshotQueriesAndWriter runs AS OF readers against a
// committing writer; every reader must observe exactly its snapshot.
func TestConcurrentSnapshotQueriesAndWriter(t *testing.T) {
	c := testConn(t)
	mustExec(t, c, `CREATE TABLE t (v INTEGER)`)
	mustExec(t, c, `INSERT INTO t VALUES (0)`)

	var snaps []uint64
	for i := 1; i <= 20; i++ {
		mustExec(t, c, `BEGIN`)
		mustExec(t, c, fmt.Sprintf(`UPDATE t SET v = %d`, i))
		id, err := c.CommitWithSnapshot()
		if err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, id)
	}

	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			conn := c.db.Conn()
			for i := 0; i < 50; i++ {
				snap := snaps[(g+i)%len(snaps)]
				rows, err := conn.Query(fmt.Sprintf(`SELECT AS OF %d v FROM t`, snap))
				if err != nil {
					done <- err
					return
				}
				if len(rows.Rows) != 1 || rows.Rows[0][0].Int() != int64(snap) {
					done <- fmt.Errorf("snapshot %d read %v", snap, rows.Rows)
					return
				}
			}
			done <- nil
		}(g)
	}
	// A concurrent writer keeps committing while readers run.
	go func() {
		conn := c.db.Conn()
		for i := 0; i < 50; i++ {
			if err := conn.Exec(fmt.Sprintf(`UPDATE t SET v = %d`, 100+i), nil); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < 9; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
