package sql

import (
	"bytes"
	"encoding/binary"
	"sort"
	"time"

	"rql/internal/btree"
	"rql/internal/record"
	"rql/internal/storage"
)

// iterator is the volcano-style row iterator every executor node
// implements. Next returns nil at end of stream. Returned rows must not
// be retained across calls unless copied.
type iterator interface {
	Next() ([]record.Value, error)
	Close() error
}

// rowidKey encodes a rowid as an order-preserving 8-byte table key.
func rowidKey(rowid int64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(rowid)^(1<<63))
	return b[:]
}

func decodeRowidKey(key []byte) int64 {
	return int64(binary.BigEndian.Uint64(key) ^ (1 << 63))
}

// ---------------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------------

// oneRowIter yields a single empty row (FROM-less SELECT).
type oneRowIter struct{ done bool }

func (i *oneRowIter) Next() ([]record.Value, error) {
	if i.done {
		return nil, nil
	}
	i.done = true
	return []record.Value{}, nil
}
func (i *oneRowIter) Close() error { return nil }

// tableScanIter scans a table in rowid order, emitting the columns
// followed by the hidden rowid.
type tableScanIter struct {
	cur     *btree.Cursor
	ncols   int
	started bool
}

func newTableScan(p storage.Pager, t *Table) *tableScanIter {
	return &tableScanIter{cur: btree.Open(p, t.Root).Cursor(), ncols: len(t.Cols)}
}

func (i *tableScanIter) Next() ([]record.Value, error) {
	var ok bool
	var err error
	if !i.started {
		i.started = true
		ok, err = i.cur.First()
	} else {
		ok, err = i.cur.Next()
	}
	if err != nil || !ok {
		return nil, err
	}
	vals, err := record.DecodeRow(i.cur.Value())
	if err != nil {
		return nil, err
	}
	row := make([]record.Value, i.ncols+1)
	copy(row, vals)
	for k := len(vals); k < i.ncols; k++ {
		row[k] = record.Null()
	}
	row[i.ncols] = record.Int(decodeRowidKey(i.cur.Key()))
	return row, nil
}
func (i *tableScanIter) Close() error { return nil }

// indexScanIter scans one index over a constant key range, fetching
// full rows from the table. lo is the seek target; the scan continues
// while the index key starts with eqPrefix (equality scans) and, for
// range scans, while checkHi admits the first key column.
type indexScanIter struct {
	pager    storage.Pager
	table    *Table
	idxCur   *btree.Cursor
	tbl      *btree.Tree
	lo       []byte
	eqPrefix []byte
	checkHi  func(v record.Value) bool // nil = no upper bound
	started  bool
}

func (i *indexScanIter) Next() ([]record.Value, error) {
	for {
		var ok bool
		var err error
		if !i.started {
			i.started = true
			ok, err = i.idxCur.Seek(i.lo)
		} else {
			ok, err = i.idxCur.Next()
		}
		if err != nil || !ok {
			return nil, err
		}
		key := i.idxCur.Key()
		if i.eqPrefix != nil && !bytes.HasPrefix(key, i.eqPrefix) {
			return nil, nil
		}
		decoded, err := record.DecodeKey(key)
		if err != nil {
			return nil, err
		}
		if i.checkHi != nil && len(decoded) > 0 && !i.checkHi(decoded[0]) {
			return nil, nil
		}
		rowid := decoded[len(decoded)-1].Int()
		row, err := fetchRow(i.tbl, i.table, rowid)
		if err != nil {
			return nil, err
		}
		if row == nil {
			continue // index points at a vanished row: skip defensively
		}
		return row, nil
	}
}
func (i *indexScanIter) Close() error { return nil }

// fetchRow loads a table row by rowid, appending the hidden rowid.
func fetchRow(tbl *btree.Tree, t *Table, rowid int64) ([]record.Value, error) {
	v, found, err := tbl.Get(rowidKey(rowid))
	if err != nil || !found {
		return nil, err
	}
	vals, err := record.DecodeRow(v)
	if err != nil {
		return nil, err
	}
	row := make([]record.Value, len(t.Cols)+1)
	copy(row, vals)
	for k := len(vals); k < len(t.Cols); k++ {
		row[k] = record.Null()
	}
	row[len(t.Cols)] = record.Int(rowid)
	return row, nil
}

// ---------------------------------------------------------------------------
// Filters and projection
// ---------------------------------------------------------------------------

type filterIter struct {
	src  iterator
	cond compiledExpr
	ec   *execCtx
}

func (i *filterIter) Next() ([]record.Value, error) {
	for {
		row, err := i.src.Next()
		if err != nil || row == nil {
			return nil, err
		}
		v, err := i.cond(&rowCtx{row: row, ec: i.ec})
		if err != nil {
			return nil, err
		}
		if !v.IsNull() && v.Truthy() {
			return row, nil
		}
	}
}
func (i *filterIter) Close() error { return i.src.Close() }

type projectIter struct {
	src   iterator
	exprs []compiledExpr
	ec    *execCtx
}

func (i *projectIter) Next() ([]record.Value, error) {
	row, err := i.src.Next()
	if err != nil || row == nil {
		return nil, err
	}
	out := make([]record.Value, len(i.exprs))
	rc := &rowCtx{row: row, ec: i.ec}
	for k, e := range i.exprs {
		v, err := e(rc)
		if err != nil {
			return nil, err
		}
		out[k] = v
	}
	return out, nil
}
func (i *projectIter) Close() error { return i.src.Close() }

// ---------------------------------------------------------------------------
// Joins
// ---------------------------------------------------------------------------

// autoIndexJoin joins outer rows against an inner side that has no
// usable native index by first building a transient covering index — a
// real scratch B-tree keyed by the join column with the full inner row
// as payload, just like SQLite's "automatic index" — and then probing
// it per outer row. The build time is recorded in ExecStats.AutoIndex,
// which Figure 9's index-creation bars measure.
type autoIndexJoin struct {
	outer     iterator
	innerCols int
	outerKey  compiledExpr
	cond      compiledExpr // residual ON condition (may be nil)
	ec        *execCtx

	// buildRows materializes the inner side on first use.
	buildRows func() ([][]record.Value, error)
	innerKey  compiledExpr

	built    bool
	buildErr error
	scratch  *storage.Tx
	tree     *btree.Tree

	outerRow []record.Value
	prefix   []byte
	cur      *btree.Cursor
}

func (i *autoIndexJoin) build() error {
	start := time.Now()
	defer func() { i.ec.stats.AutoIndex += time.Since(start) }()
	rows, err := i.buildRows()
	if err != nil {
		return err
	}
	// The transient index lives in a scratch in-memory store so its
	// build cost has the same page/btree profile as a native index.
	store := storage.NewStore()
	tx, err := store.Begin()
	if err != nil {
		return err
	}
	root, err := btree.Create(tx)
	if err != nil {
		return err
	}
	i.scratch = tx
	i.tree = btree.Open(tx, root)
	var key []byte
	var val []byte
	for seq, row := range rows {
		kv, err := i.innerKey(&rowCtx{row: row, ec: i.ec})
		if err != nil {
			return err
		}
		if kv.IsNull() {
			continue // NULL keys never match an equi-join
		}
		key = record.EncodeKey(key[:0], []record.Value{kv, record.Int(int64(seq))})
		val = record.EncodeRow(val[:0], row)
		if err := i.tree.Insert(key, val); err != nil {
			return err
		}
	}
	return nil
}

func (i *autoIndexJoin) Next() ([]record.Value, error) {
	if !i.built {
		i.built = true
		i.buildErr = i.build()
	}
	if i.buildErr != nil {
		return nil, i.buildErr
	}
	for {
		if i.outerRow == nil {
			row, err := i.outer.Next()
			if err != nil || row == nil {
				return nil, err
			}
			kv, err := i.outerKey(&rowCtx{row: row, ec: i.ec})
			if err != nil {
				return nil, err
			}
			if kv.IsNull() {
				continue
			}
			i.outerRow = row
			i.prefix = record.EncodeKey(nil, []record.Value{kv})
			i.cur = i.tree.Cursor()
			if ok, err := i.cur.Seek(i.prefix); err != nil {
				return nil, err
			} else if !ok {
				i.outerRow = nil
				continue
			}
		} else {
			if ok, err := i.cur.Next(); err != nil {
				return nil, err
			} else if !ok {
				i.outerRow = nil
				continue
			}
		}
		if !bytes.HasPrefix(i.cur.Key(), i.prefix) {
			i.outerRow = nil
			continue
		}
		inner, err := record.DecodeRow(i.cur.Value())
		if err != nil {
			return nil, err
		}
		joined := joinRows(i.outerRow, inner)
		if i.cond != nil {
			v, err := i.cond(&rowCtx{row: joined, ec: i.ec})
			if err != nil {
				return nil, err
			}
			if v.IsNull() || !v.Truthy() {
				continue
			}
		}
		return joined, nil
	}
}

func (i *autoIndexJoin) Close() error {
	if i.scratch != nil {
		i.scratch.Rollback()
		i.scratch = nil
	}
	return i.outer.Close()
}

// indexJoinIter joins outer rows against an inner base table through a
// native index: per outer row it probes the index with the join key.
type indexJoinIter struct {
	outer    iterator
	pager    storage.Pager
	table    *Table
	index    *Index
	outerKey compiledExpr
	cond     compiledExpr
	ec       *execCtx

	outerRow []record.Value
	idxCur   *btree.Cursor
	prefix   []byte
	tbl      *btree.Tree
}

func (i *indexJoinIter) Next() ([]record.Value, error) {
	for {
		if i.outerRow == nil {
			row, err := i.outer.Next()
			if err != nil || row == nil {
				return nil, err
			}
			kv, err := i.outerKey(&rowCtx{row: row, ec: i.ec})
			if err != nil {
				return nil, err
			}
			if kv.IsNull() {
				continue
			}
			i.outerRow = row
			i.prefix = record.EncodeKey(nil, []record.Value{kv})
			i.idxCur = btree.Open(i.pager, i.index.Root).Cursor()
			if ok, err := i.idxCur.Seek(i.prefix); err != nil {
				return nil, err
			} else if !ok {
				i.outerRow = nil
				continue
			}
		} else {
			if ok, err := i.idxCur.Next(); err != nil {
				return nil, err
			} else if !ok {
				i.outerRow = nil
				continue
			}
		}
		key := i.idxCur.Key()
		if !bytes.HasPrefix(key, i.prefix) {
			i.outerRow = nil
			continue
		}
		decoded, err := record.DecodeKey(key)
		if err != nil {
			return nil, err
		}
		rowid := decoded[len(decoded)-1].Int()
		inner, err := fetchRow(i.tbl, i.table, rowid)
		if err != nil {
			return nil, err
		}
		if inner == nil {
			continue
		}
		joined := joinRows(i.outerRow, inner)
		if i.cond != nil {
			v, err := i.cond(&rowCtx{row: joined, ec: i.ec})
			if err != nil {
				return nil, err
			}
			if v.IsNull() || !v.Truthy() {
				continue
			}
		}
		return joined, nil
	}
}
func (i *indexJoinIter) Close() error { return i.outer.Close() }

// nlJoinIter is the fallback nested-loop join over a materialized inner.
type nlJoinIter struct {
	outer     iterator
	inner     [][]record.Value
	innerCols int
	cond      compiledExpr
	leftOuter bool
	ec        *execCtx

	outerRow   []record.Value
	innerIdx   int
	emittedAny bool
}

func (i *nlJoinIter) Next() ([]record.Value, error) {
	for {
		if i.outerRow == nil {
			row, err := i.outer.Next()
			if err != nil || row == nil {
				return nil, err
			}
			i.outerRow = row
			i.innerIdx = 0
			i.emittedAny = false
		}
		for i.innerIdx < len(i.inner) {
			inner := i.inner[i.innerIdx]
			i.innerIdx++
			joined := joinRows(i.outerRow, inner)
			if i.cond != nil {
				v, err := i.cond(&rowCtx{row: joined, ec: i.ec})
				if err != nil {
					return nil, err
				}
				if v.IsNull() || !v.Truthy() {
					continue
				}
			}
			i.emittedAny = true
			return joined, nil
		}
		if i.leftOuter && !i.emittedAny {
			nulls := make([]record.Value, i.innerCols)
			joined := joinRows(i.outerRow, nulls)
			i.outerRow = nil
			return joined, nil
		}
		i.outerRow = nil
	}
}
func (i *nlJoinIter) Close() error { return i.outer.Close() }

func joinRows(a, b []record.Value) []record.Value {
	out := make([]record.Value, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}

// drain materializes an iterator.
func drain(it iterator) ([][]record.Value, error) {
	defer it.Close()
	var rows [][]record.Value
	for {
		row, err := it.Next()
		if err != nil {
			return nil, err
		}
		if row == nil {
			return rows, nil
		}
		rows = append(rows, row)
	}
}

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

// aggSpec describes one aggregate call in the statement.
type aggSpec struct {
	call     *FuncCall
	arg      compiledExpr // nil for count(*)
	isMinMax bool
}

// aggregateIter groups its input and computes aggregates. Output rows
// are the group's representative input row extended with the aggregate
// results, so post-aggregation expressions can reference both bare
// columns (SQLite semantics: values from the representative row, which
// for a single min/max aggregate is the row that set the extreme) and
// aggregate slots.
type aggregateIter struct {
	src       iterator
	groupBy   []compiledExpr
	specs     []aggSpec
	inputCols int
	ec        *execCtx
	// emitEmptyGroup: aggregate query with no GROUP BY emits one row
	// even on empty input.
	emitEmptyGroup bool

	done   bool
	out    [][]record.Value
	outIdx int
}

func (i *aggregateIter) Next() ([]record.Value, error) {
	if !i.done {
		if err := i.run(); err != nil {
			return nil, err
		}
		i.done = true
	}
	if i.outIdx >= len(i.out) {
		return nil, nil
	}
	row := i.out[i.outIdx]
	i.outIdx++
	return row, nil
}

func (i *aggregateIter) Close() error { return i.src.Close() }

type aggGroup struct {
	rep    []record.Value
	states []aggState
}

func (i *aggregateIter) run() error {
	groups := make(map[string]*aggGroup)
	var order []string

	// The representative-row refinement applies when exactly one
	// aggregate exists and it is min or max.
	repFollowsExtreme := len(i.specs) == 1 && i.specs[0].isMinMax

	for {
		row, err := i.src.Next()
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		rc := &rowCtx{row: row, ec: i.ec}
		var keyBuf []byte
		for _, g := range i.groupBy {
			v, err := g(rc)
			if err != nil {
				return err
			}
			keyBuf = record.EncodeKey(keyBuf, []record.Value{v})
		}
		key := string(keyBuf)
		grp := groups[key]
		if grp == nil {
			grp = &aggGroup{rep: append([]record.Value(nil), row...)}
			for _, spec := range i.specs {
				st, err := newAggState(spec.call.Name)
				if err != nil {
					return err
				}
				if spec.call.Distinct {
					st = newDistinctAgg(st)
				}
				grp.states = append(grp.states, st)
			}
			groups[key] = grp
			order = append(order, key)
		}
		for k, spec := range i.specs {
			var v record.Value
			if spec.arg == nil {
				v = record.Int(1) // count(*): any non-null
			} else {
				v, err = spec.arg(rc)
				if err != nil {
					return err
				}
			}
			becameExtreme := grp.states[k].step(v)
			if becameExtreme && repFollowsExtreme {
				grp.rep = append(grp.rep[:0], row...)
			}
		}
	}

	if len(groups) == 0 && i.emitEmptyGroup {
		grp := &aggGroup{rep: make([]record.Value, i.inputCols)}
		for k := range grp.rep {
			grp.rep[k] = record.Null()
		}
		for _, spec := range i.specs {
			st, err := newAggState(spec.call.Name)
			if err != nil {
				return err
			}
			if spec.call.Distinct {
				st = newDistinctAgg(st)
			}
			grp.states = append(grp.states, st)
		}
		groups[""] = grp
		order = append(order, "")
	}

	for _, key := range order {
		grp := groups[key]
		row := make([]record.Value, i.inputCols+len(i.specs))
		copy(row, grp.rep)
		for k, st := range grp.states {
			row[i.inputCols+k] = st.final()
		}
		i.out = append(i.out, row)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Distinct, sort, limit
// ---------------------------------------------------------------------------

// distinctIter deduplicates projected rows, carrying the source row
// alongside so later sort stages can still compute their keys.
type pairRow struct {
	proj []record.Value
	src  []record.Value
}

type distinctPairIter struct {
	src  *projectPairIter
	seen map[string]bool
}

func (i *distinctPairIter) Next() (*pairRow, error) {
	if i.seen == nil {
		i.seen = make(map[string]bool)
	}
	for {
		pr, err := i.src.Next()
		if err != nil || pr == nil {
			return nil, err
		}
		key := string(record.EncodeKey(nil, pr.proj))
		if i.seen[key] {
			continue
		}
		i.seen[key] = true
		return pr, nil
	}
}
func (i *distinctPairIter) Close() error { return i.src.Close() }

// projectPairIter computes the projection while retaining the source row.
type projectPairIter struct {
	src   iterator
	exprs []compiledExpr
	ec    *execCtx
}

func (i *projectPairIter) Next() (*pairRow, error) {
	row, err := i.src.Next()
	if err != nil || row == nil {
		return nil, err
	}
	out := make([]record.Value, len(i.exprs))
	rc := &rowCtx{row: row, ec: i.ec}
	for k, e := range i.exprs {
		v, err := e(rc)
		if err != nil {
			return nil, err
		}
		out[k] = v
	}
	return &pairRow{proj: out, src: row}, nil
}
func (i *projectPairIter) Close() error { return i.src.Close() }

// finalIter adapts the pair stream to the iterator interface, applying
// ORDER BY (materializing), LIMIT and OFFSET.
type finalIter struct {
	pairs interface {
		Next() (*pairRow, error)
		Close() error
	}
	orderBy []compiledExpr // evaluated against the source row
	desc    []bool
	// project-row ordinals: when an ORDER BY term is a literal integer
	// N, sort by projected column N (1-based). ordinal[k] >= 0 wins
	// over orderBy[k].
	ordinal []int
	limit   int64 // -1 = no limit
	offset  int64
	ec      *execCtx

	sorted  bool
	rows    []*pairRow
	keys    [][]record.Value
	idx     int
	emitted int64
}

func (i *finalIter) Next() ([]record.Value, error) {
	if len(i.orderBy) == 0 {
		// Streaming path.
		for i.offset > 0 {
			pr, err := i.pairs.Next()
			if err != nil || pr == nil {
				return nil, err
			}
			i.offset--
		}
		if i.limit >= 0 && i.emitted >= i.limit {
			return nil, nil
		}
		pr, err := i.pairs.Next()
		if err != nil || pr == nil {
			return nil, err
		}
		i.emitted++
		return pr.proj, nil
	}
	if !i.sorted {
		if err := i.sortAll(); err != nil {
			return nil, err
		}
		i.sorted = true
		i.idx = int(i.offset)
	}
	if i.idx >= len(i.rows) {
		return nil, nil
	}
	if i.limit >= 0 && i.emitted >= i.limit {
		return nil, nil
	}
	row := i.rows[i.idx].proj
	i.idx++
	i.emitted++
	return row, nil
}

func (i *finalIter) sortAll() error {
	for {
		pr, err := i.pairs.Next()
		if err != nil {
			return err
		}
		if pr == nil {
			break
		}
		key := make([]record.Value, len(i.orderBy))
		rc := &rowCtx{row: pr.src, ec: i.ec}
		for k, e := range i.orderBy {
			if i.ordinal[k] >= 0 {
				key[k] = pr.proj[i.ordinal[k]]
				continue
			}
			v, err := e(rc)
			if err != nil {
				return err
			}
			key[k] = v
		}
		i.rows = append(i.rows, pr)
		i.keys = append(i.keys, key)
	}
	// Sort indices so rows and keys stay aligned.
	idxs := make([]int, len(i.rows))
	for k := range idxs {
		idxs[k] = k
	}
	sort.SliceStable(idxs, func(a, b int) bool {
		ka, kb := i.keys[idxs[a]], i.keys[idxs[b]]
		for t := range ka {
			c := record.Compare(ka[t], kb[t])
			if c == 0 {
				continue
			}
			if i.desc[t] {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	rows := make([]*pairRow, len(idxs))
	for k, id := range idxs {
		rows[k] = i.rows[id]
	}
	i.rows = rows
	return nil
}

func (i *finalIter) Close() error { return i.pairs.Close() }

// passPairIter wraps a pair source without deduplication.
type passPairIter struct{ src *projectPairIter }

func (i *passPairIter) Next() (*pairRow, error) { return i.src.Next() }
func (i *passPairIter) Close() error            { return i.src.Close() }

// sliceIter replays materialized rows (used for subqueries in FROM).
type sliceIter struct {
	rows [][]record.Value
	idx  int
}

func (i *sliceIter) Next() ([]record.Value, error) {
	if i.idx >= len(i.rows) {
		return nil, nil
	}
	r := i.rows[i.idx]
	i.idx++
	return r, nil
}
func (i *sliceIter) Close() error { return nil }
