package sql

import (
	"fmt"
	"strings"
)

// Delta pruning (internal/core) replays a cached result instead of
// re-executing Qq when no page in the statement's read-set changed
// between two snapshot-set members. That is only sound for statements
// whose output is a pure function of the snapshot pages they read (plus
// the snapshot id itself, which the replay substitutes). PruneInfo is
// the static analysis deciding that.
type PruneInfo struct {
	// OK reports that the statement is prune-safe; Reason says why not.
	OK     bool
	Reason string
	// SnapCols are the 0-based projection columns that are a bare
	// current_snapshot() call — the only snapshot-dependent expression
	// allowed, because the replay rewrites exactly those columns to the
	// new snapshot id.
	SnapCols []int
}

// pruneSafeFuncs are the scalar builtins whose output depends only on
// their arguments. current_snapshot is handled separately (allowed only
// as a bare projection column); any other name — in particular a
// registered UDF, whose body can do anything — defeats pruning.
var pruneSafeFuncs = map[string]bool{
	"abs": true, "length": true, "lower": true, "upper": true,
	"substr": true, "coalesce": true, "ifnull": true, "nullif": true,
	"typeof": true, "round": true, "min": true, "max": true,
	"cast": true, "printf": true,
}

// PruneInfo analyzes a query for delta-prune safety: it must be exactly
// one SELECT with no statement-level AS OF (which would override the
// snapshot binding), reference only main-store (snapshotable) tables,
// call only deterministic builtin functions, and mention
// current_snapshot() only as a bare top-level projection column.
func (c *Conn) PruneInfo(sqlText string) PruneInfo {
	stmts, err := c.parseCached(sqlText)
	if err != nil {
		return PruneInfo{Reason: "parse error"}
	}
	if len(stmts) != 1 {
		return PruneInfo{Reason: "multiple statements"}
	}
	sel, ok := stmts[0].(*SelectStmt)
	if !ok {
		return PruneInfo{Reason: "not a SELECT"}
	}
	// Side-store tables (temp tables, SnapIds) are not covered by the
	// snapshot deltas: their content can change between iterations
	// without any Maplog capture, so referencing one defeats pruning.
	sideNames, err := c.sideTableNames()
	if err != nil {
		return PruneInfo{Reason: "side-store schema unavailable"}
	}
	a := &pruneAnalyzer{side: sideNames}
	a.walkSelect(sel, true)
	if a.reason != "" {
		return PruneInfo{Reason: a.reason}
	}
	return PruneInfo{OK: true, SnapCols: a.snapCols}
}

// sideTableNames returns the lower-cased names of the side store's
// current tables.
func (c *Conn) sideTableNames() (map[string]bool, error) {
	srt, err := c.db.side.BeginRead()
	if err != nil {
		return nil, err
	}
	defer srt.Close()
	s, err := c.db.currentSchema(c.db.side, srt, srt.LSN(), true)
	if err != nil {
		return nil, err
	}
	names := make(map[string]bool, len(s.tables))
	for name := range s.tables {
		names[name] = true
	}
	return names, nil
}

type pruneAnalyzer struct {
	side     map[string]bool
	snapCols []int
	reason   string
}

func (a *pruneAnalyzer) fail(format string, args ...any) {
	if a.reason == "" {
		a.reason = fmt.Sprintf(format, args...)
	}
}

func (a *pruneAnalyzer) walkSelect(s *SelectStmt, top bool) {
	if s.AsOf != nil {
		a.fail("statement-level AS OF overrides the snapshot binding")
		return
	}
	hasStar := false
	for i, col := range s.Cols {
		if col.Star {
			hasStar = true
			continue
		}
		if top {
			if fc, ok := col.Expr.(*FuncCall); ok && fc.Name == "current_snapshot" && !fc.Star && len(fc.Args) == 0 {
				a.snapCols = append(a.snapCols, i)
				continue
			}
		}
		a.walkExpr(col.Expr)
	}
	// SnapCols are ResultCol indices; a star expands to an unknown
	// number of output columns, so mixing the two would re-tag the
	// wrong column on replay.
	if top && hasStar && len(a.snapCols) > 0 {
		a.fail("star projection mixed with current_snapshot()")
	}
	for _, tr := range s.From {
		if tr.Subquery != nil {
			a.walkSelect(tr.Subquery, false)
		} else if a.side[strings.ToLower(tr.Name)] {
			a.fail("references non-snapshotable table %s", tr.Name)
		}
		a.walkExpr(tr.JoinCond)
	}
	a.walkExpr(s.Where)
	for _, e := range s.GroupBy {
		a.walkExpr(e)
	}
	a.walkExpr(s.Having)
	for _, o := range s.OrderBy {
		a.walkExpr(o.Expr)
	}
	a.walkExpr(s.Limit)
	a.walkExpr(s.Offset)
}

func (a *pruneAnalyzer) walkExpr(e Expr) {
	if e == nil || a.reason != "" {
		return
	}
	switch x := e.(type) {
	case *Literal, *ColumnRef, *ParamRef:
	case *UnaryExpr:
		a.walkExpr(x.X)
	case *BinaryExpr:
		a.walkExpr(x.L)
		a.walkExpr(x.R)
	case *IsNullExpr:
		a.walkExpr(x.X)
	case *BetweenExpr:
		a.walkExpr(x.X)
		a.walkExpr(x.Lo)
		a.walkExpr(x.Hi)
	case *InExpr:
		a.walkExpr(x.X)
		for _, v := range x.List {
			a.walkExpr(v)
		}
	case *LikeExpr:
		a.walkExpr(x.X)
		a.walkExpr(x.Pattern)
	case *CaseExpr:
		a.walkExpr(x.Operand)
		for _, w := range x.Whens {
			a.walkExpr(w.Cond)
			a.walkExpr(w.Result)
		}
		a.walkExpr(x.Else)
	case *FuncCall:
		switch {
		case x.Name == "current_snapshot":
			a.fail("current_snapshot() outside a bare projection column")
		case isAggregateName(x.Name) || pruneSafeFuncs[x.Name]:
			for _, arg := range x.Args {
				a.walkExpr(arg)
			}
		default:
			a.fail("non-builtin function %s()", x.Name)
		}
	default:
		a.fail("unsupported expression")
	}
}
