package sql

import (
	"fmt"
	"strconv"
	"strings"

	"rql/internal/record"
)

// Parse parses a single SQL statement.
func Parse(src string) (Statement, error) {
	stmts, err := ParseAll(src)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("sql: expected one statement, got %d", len(stmts))
	}
	return stmts[0], nil
}

// ParseAll parses a semicolon-separated sequence of statements.
func ParseAll(src string) ([]Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	var stmts []Statement
	for {
		for p.acceptSym(";") {
		}
		if p.peek().kind == tkEOF {
			break
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
		if !p.acceptSym(";") && p.peek().kind != tkEOF {
			return nil, p.errf("expected ';' or end of input")
		}
	}
	if len(stmts) == 0 {
		return nil, fmt.Errorf("sql: empty statement")
	}
	return stmts, nil
}

type parser struct {
	toks   []token
	pos    int
	src    string
	params int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) back()       { p.pos-- }

func (p *parser) errf(format string, args ...any) error {
	t := p.peek()
	near := t.text
	if t.kind == tkEOF {
		near = "end of input"
	}
	return fmt.Errorf("sql: %s (near %q, offset %d)", fmt.Sprintf(format, args...), near, t.pos)
}

// acceptKw consumes the next token if it is the given keyword.
func (p *parser) acceptKw(kw string) bool {
	if t := p.peek(); t.kind == tkKeyword && t.text == kw {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return p.errf("expected %s", kw)
	}
	return nil
}

func (p *parser) acceptSym(s string) bool {
	if t := p.peek(); t.kind == tkSymbol && t.text == s {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectSym(s string) error {
	if !p.acceptSym(s) {
		return p.errf("expected %q", s)
	}
	return nil
}

// ident consumes an identifier (allowing non-reserved use of keywords
// is deliberately not supported: quote the name instead).
func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.kind != tkIdent {
		return "", p.errf("expected identifier")
	}
	p.pos++
	return t.text, nil
}

func (p *parser) statement() (Statement, error) {
	t := p.peek()
	if t.kind != tkKeyword {
		return nil, p.errf("expected statement")
	}
	switch t.text {
	case "EXPLAIN":
		p.next()
		// ANALYZE is deliberately not a reserved word — it lexes as an
		// identifier, so tables and columns named "analyze" keep working.
		analyze := false
		if t := p.peek(); t.kind == tkIdent && strings.EqualFold(t.text, "ANALYZE") {
			p.next()
			analyze = true
		}
		sel, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		return &ExplainStmt{Select: sel, Analyze: analyze}, nil
	case "SELECT":
		return p.selectStmt()
	case "INSERT":
		return p.insertStmt()
	case "UPDATE":
		return p.updateStmt()
	case "DELETE":
		return p.deleteStmt()
	case "CREATE":
		return p.createStmt()
	case "DROP":
		return p.dropStmt()
	case "BEGIN":
		p.next()
		p.acceptKw("TRANSACTION")
		return &BeginStmt{}, nil
	case "COMMIT":
		p.next()
		ws := false
		if p.acceptKw("WITH") {
			if err := p.expectKw("SNAPSHOT"); err != nil {
				return nil, err
			}
			ws = true
		}
		return &CommitStmt{WithSnapshot: ws}, nil
	case "ROLLBACK":
		p.next()
		return &RollbackStmt{}, nil
	case "REFRESH":
		p.next()
		if err := p.expectKw("RETRO"); err != nil {
			return nil, err
		}
		if err := p.expectKw("VIEW"); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &RefreshRetroViewStmt{Name: name}, nil
	}
	return nil, p.errf("unsupported statement %s", t.text)
}

// selectStmt parses SELECT [AS OF expr] [DISTINCT|ALL] cols [FROM ...]
// [WHERE ...] [GROUP BY ... [HAVING ...]] [ORDER BY ...] [LIMIT ...].
func (p *parser) selectStmt() (*SelectStmt, error) {
	if err := p.expectKw("SELECT"); err != nil {
		return nil, err
	}
	s := &SelectStmt{}
	// Retro extension: SELECT AS OF <expr> ...
	if p.acceptKw("AS") {
		if err := p.expectKw("OF"); err != nil {
			return nil, err
		}
		e, err := p.exprPrimaryOnly()
		if err != nil {
			return nil, err
		}
		s.AsOf = e
	}
	if p.acceptKw("DISTINCT") {
		s.Distinct = true
	} else {
		p.acceptKw("ALL")
	}
	for {
		col, err := p.resultCol()
		if err != nil {
			return nil, err
		}
		s.Cols = append(s.Cols, col)
		if !p.acceptSym(",") {
			break
		}
	}
	if p.acceptKw("FROM") {
		refs, err := p.tableRefs()
		if err != nil {
			return nil, err
		}
		s.From = refs
	}
	if p.acceptKw("WHERE") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		s.Where = e
	}
	if p.acceptKw("GROUP") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, e)
			if !p.acceptSym(",") {
				break
			}
		}
		if p.acceptKw("HAVING") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			s.Having = e
		}
	}
	if p.acceptKw("ORDER") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			term := OrderTerm{Expr: e}
			if p.acceptKw("DESC") {
				term.Desc = true
			} else {
				p.acceptKw("ASC")
			}
			s.OrderBy = append(s.OrderBy, term)
			if !p.acceptSym(",") {
				break
			}
		}
	}
	if p.acceptKw("LIMIT") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		s.Limit = e
		if p.acceptKw("OFFSET") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			s.Offset = e
		}
	}
	return s, nil
}

// exprPrimaryOnly parses a restricted expression for AS OF: a literal,
// parameter, or parenthesized expression (a full expression would
// swallow the select list's leading tokens).
func (p *parser) exprPrimaryOnly() (Expr, error) {
	t := p.peek()
	switch {
	case t.kind == tkNumber:
		p.next()
		return numberLiteral(t.text)
	case t.kind == tkString:
		p.next()
		return &Literal{Val: record.Text(t.text)}, nil
	case t.kind == tkParam:
		p.next()
		idx := p.params
		p.params++
		return &ParamRef{Index: idx}, nil
	case t.kind == tkSymbol && t.text == "(":
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, p.errf("expected snapshot id after AS OF")
}

func (p *parser) resultCol() (ResultCol, error) {
	if p.acceptSym("*") {
		return ResultCol{Star: true}, nil
	}
	// table.* form
	if t := p.peek(); t.kind == tkIdent {
		save := p.pos
		name := p.next().text
		if p.acceptSym(".") && p.acceptSym("*") {
			return ResultCol{Star: true, StarTable: name}, nil
		}
		p.pos = save
	}
	e, err := p.expr()
	if err != nil {
		return ResultCol{}, err
	}
	col := ResultCol{Expr: e}
	if p.acceptKw("AS") {
		a, err := p.ident()
		if err != nil {
			return ResultCol{}, err
		}
		col.Alias = a
	} else if t := p.peek(); t.kind == tkIdent {
		p.next()
		col.Alias = t.text
	}
	return col, nil
}

func (p *parser) tableRefs() ([]TableRef, error) {
	var refs []TableRef
	ref, err := p.tableRef()
	if err != nil {
		return nil, err
	}
	refs = append(refs, ref)
	for {
		switch {
		case p.acceptSym(","):
			r, err := p.tableRef()
			if err != nil {
				return nil, err
			}
			refs = append(refs, r)
		case p.peekJoin():
			r, err := p.joinClause()
			if err != nil {
				return nil, err
			}
			refs = append(refs, r)
		default:
			return refs, nil
		}
	}
}

func (p *parser) peekJoin() bool {
	t := p.peek()
	return t.kind == tkKeyword && (t.text == "JOIN" || t.text == "INNER" || t.text == "LEFT" || t.text == "CROSS")
}

func (p *parser) joinClause() (TableRef, error) {
	left := false
	switch {
	case p.acceptKw("INNER"):
	case p.acceptKw("CROSS"):
	case p.acceptKw("LEFT"):
		p.acceptKw("OUTER")
		left = true
	}
	if err := p.expectKw("JOIN"); err != nil {
		return TableRef{}, err
	}
	ref, err := p.tableRef()
	if err != nil {
		return TableRef{}, err
	}
	ref.LeftJoin = left
	if p.acceptKw("ON") {
		e, err := p.expr()
		if err != nil {
			return TableRef{}, err
		}
		ref.JoinCond = e
	} else if left {
		return TableRef{}, p.errf("LEFT JOIN requires ON")
	}
	return ref, nil
}

func (p *parser) tableRef() (TableRef, error) {
	if p.acceptSym("(") {
		sub, err := p.selectStmt()
		if err != nil {
			return TableRef{}, err
		}
		if err := p.expectSym(")"); err != nil {
			return TableRef{}, err
		}
		ref := TableRef{Subquery: sub}
		if p.acceptKw("AS") {
			a, err := p.ident()
			if err != nil {
				return TableRef{}, err
			}
			ref.Alias = a
		} else if t := p.peek(); t.kind == tkIdent {
			p.next()
			ref.Alias = t.text
		}
		return ref, nil
	}
	name, err := p.ident()
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Name: name}
	if p.acceptKw("AS") {
		a, err := p.ident()
		if err != nil {
			return TableRef{}, err
		}
		ref.Alias = a
	} else if t := p.peek(); t.kind == tkIdent {
		p.next()
		ref.Alias = t.text
	}
	return ref, nil
}

func (p *parser) insertStmt() (Statement, error) {
	p.next() // INSERT
	if err := p.expectKw("INTO"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	s := &InsertStmt{Table: name}
	if p.acceptSym("(") {
		for {
			c, err := p.ident()
			if err != nil {
				return nil, err
			}
			s.Cols = append(s.Cols, c)
			if !p.acceptSym(",") {
				break
			}
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
	}
	if p.acceptKw("VALUES") {
		for {
			if err := p.expectSym("("); err != nil {
				return nil, err
			}
			var row []Expr
			for {
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				row = append(row, e)
				if !p.acceptSym(",") {
					break
				}
			}
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
			s.Rows = append(s.Rows, row)
			if !p.acceptSym(",") {
				break
			}
		}
		return s, nil
	}
	sub, err := p.selectStmt()
	if err != nil {
		return nil, err
	}
	s.Select = sub
	return s, nil
}

func (p *parser) updateStmt() (Statement, error) {
	p.next() // UPDATE
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	s := &UpdateStmt{Table: name}
	if err := p.expectKw("SET"); err != nil {
		return nil, err
	}
	for {
		c, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym("="); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		s.Cols = append(s.Cols, c)
		s.Exprs = append(s.Exprs, e)
		if !p.acceptSym(",") {
			break
		}
	}
	if p.acceptKw("WHERE") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		s.Where = e
	}
	return s, nil
}

func (p *parser) deleteStmt() (Statement, error) {
	p.next() // DELETE
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	s := &DeleteStmt{Table: name}
	if p.acceptKw("WHERE") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		s.Where = e
	}
	return s, nil
}

func (p *parser) createStmt() (Statement, error) {
	p.next() // CREATE
	temp := p.acceptKw("TEMP") || p.acceptKw("TEMPORARY")
	unique := p.acceptKw("UNIQUE")
	switch {
	case p.acceptKw("TABLE"):
		if unique {
			return nil, p.errf("UNIQUE applies to indexes")
		}
		return p.createTable(temp)
	case p.acceptKw("INDEX"):
		if temp {
			return nil, p.errf("TEMP indexes are not supported")
		}
		return p.createIndex(unique)
	case p.acceptKw("RETRO"):
		if temp || unique {
			return nil, p.errf("TEMP/UNIQUE do not apply to retro views")
		}
		return p.createRetroView()
	}
	return nil, p.errf("expected TABLE, INDEX or RETRO VIEW")
}

// createRetroView parses the tail of
// CREATE RETRO VIEW name AS Mechanism('qq'[, 'extra']).
func (p *parser) createRetroView() (Statement, error) {
	if err := p.expectKw("VIEW"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("AS"); err != nil {
		return nil, err
	}
	mech, err := p.ident()
	if err != nil {
		return nil, p.errf("expected mechanism name")
	}
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	s := &CreateRetroViewStmt{Name: name, Mechanism: mech}
	if p.peek().kind != tkString {
		return nil, p.errf("expected string literal (the retrospective query)")
	}
	s.Qq = p.next().text
	if p.acceptSym(",") {
		if p.peek().kind != tkString {
			return nil, p.errf("expected string literal")
		}
		s.Extra = p.next().text
		s.HasExtra = true
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	return s, nil
}

func (p *parser) ifNotExists() (bool, error) {
	if !p.acceptKw("IF") {
		return false, nil
	}
	if !p.acceptKw("NOT") {
		return false, p.errf("expected NOT EXISTS")
	}
	if err := p.expectKw("EXISTS"); err != nil {
		return false, err
	}
	return true, nil
}

func (p *parser) createTable(temp bool) (Statement, error) {
	ine, err := p.ifNotExists()
	if err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	s := &CreateTableStmt{Name: name, Temp: temp, IfNotExists: ine}
	if p.acceptKw("AS") {
		sub, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		s.AsSelect = sub
		return s, nil
	}
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	for {
		col, err := p.colDef()
		if err != nil {
			return nil, err
		}
		s.Cols = append(s.Cols, col)
		if !p.acceptSym(",") {
			break
		}
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	return s, nil
}

func (p *parser) colDef() (ColDef, error) {
	name, err := p.ident()
	if err != nil {
		return ColDef{}, err
	}
	col := ColDef{Name: name}
	// Optional type: one or more identifiers, optionally (n) or (n,m).
	var typeParts []string
	for p.peek().kind == tkIdent {
		typeParts = append(typeParts, p.next().text)
	}
	if len(typeParts) > 0 && p.acceptSym("(") {
		depth := 1
		for depth > 0 {
			t := p.next()
			if t.kind == tkEOF {
				return ColDef{}, p.errf("unterminated type parameters")
			}
			if t.kind == tkSymbol && t.text == "(" {
				depth++
			}
			if t.kind == tkSymbol && t.text == ")" {
				depth--
			}
		}
	}
	col.Type = strings.ToUpper(strings.Join(typeParts, " "))
	for {
		switch {
		case p.acceptKw("PRIMARY"):
			if err := p.expectKw("KEY"); err != nil {
				return ColDef{}, err
			}
			col.PrimaryKey = true
		case p.acceptKw("NOT"):
			if err := p.expectKw("NULL"); err != nil {
				return ColDef{}, err
			}
			col.NotNull = true
		case p.acceptKw("DEFAULT"):
			if _, err := p.expr(); err != nil { // parsed and ignored
				return ColDef{}, err
			}
		default:
			return col, nil
		}
	}
}

func (p *parser) createIndex(unique bool) (Statement, error) {
	ine, err := p.ifNotExists()
	if err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("ON"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	s := &CreateIndexStmt{Name: name, Table: table, Unique: unique, IfNotExists: ine}
	for {
		c, err := p.ident()
		if err != nil {
			return nil, err
		}
		s.Cols = append(s.Cols, c)
		if !p.acceptSym(",") {
			break
		}
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	return s, nil
}

func (p *parser) dropStmt() (Statement, error) {
	p.next() // DROP
	var index, view bool
	switch {
	case p.acceptKw("TABLE"):
	case p.acceptKw("INDEX"):
		index = true
	case p.acceptKw("RETRO"):
		if err := p.expectKw("VIEW"); err != nil {
			return nil, err
		}
		view = true
	default:
		return nil, p.errf("expected TABLE, INDEX or RETRO VIEW")
	}
	ife := false
	if p.acceptKw("IF") {
		if err := p.expectKw("EXISTS"); err != nil {
			return nil, err
		}
		ife = true
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if view {
		return &DropRetroViewStmt{Name: name, IfExists: ife}, nil
	}
	return &DropStmt{Index: index, Name: name, IfExists: ife}, nil
}

// ---------------------------------------------------------------------------
// Expressions (precedence climbing)
// ---------------------------------------------------------------------------

func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("OR") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("AND") {
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) notExpr() (Expr, error) {
	if p.acceptKw("NOT") {
		x, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", X: x}, nil
	}
	return p.cmpExpr()
}

func (p *parser) cmpExpr() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		switch {
		case t.kind == tkSymbol && (t.text == "=" || t.text == "==" || t.text == "!=" || t.text == "<>" ||
			t.text == "<" || t.text == "<=" || t.text == ">" || t.text == ">="):
			p.next()
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			op := t.text
			if op == "==" {
				op = "="
			}
			if op == "<>" {
				op = "!="
			}
			l = &BinaryExpr{Op: op, L: l, R: r}
		case t.kind == tkKeyword && t.text == "IS":
			p.next()
			not := p.acceptKw("NOT")
			if err := p.expectKw("NULL"); err != nil {
				return nil, err
			}
			l = &IsNullExpr{X: l, Not: not}
		case t.kind == tkKeyword && (t.text == "IN" || t.text == "BETWEEN" || t.text == "LIKE" || t.text == "NOT"):
			not := false
			if t.text == "NOT" {
				// lookahead: NOT IN / NOT BETWEEN / NOT LIKE
				nt := p.toks[p.pos+1]
				if nt.kind != tkKeyword || (nt.text != "IN" && nt.text != "BETWEEN" && nt.text != "LIKE") {
					return l, nil
				}
				p.next()
				not = true
				t = p.peek()
			}
			switch t.text {
			case "IN":
				p.next()
				if err := p.expectSym("("); err != nil {
					return nil, err
				}
				var list []Expr
				for {
					e, err := p.expr()
					if err != nil {
						return nil, err
					}
					list = append(list, e)
					if !p.acceptSym(",") {
						break
					}
				}
				if err := p.expectSym(")"); err != nil {
					return nil, err
				}
				l = &InExpr{X: l, List: list, Not: not}
			case "BETWEEN":
				p.next()
				lo, err := p.addExpr()
				if err != nil {
					return nil, err
				}
				if err := p.expectKw("AND"); err != nil {
					return nil, err
				}
				hi, err := p.addExpr()
				if err != nil {
					return nil, err
				}
				l = &BetweenExpr{X: l, Lo: lo, Hi: hi, Not: not}
			case "LIKE":
				p.next()
				pat, err := p.addExpr()
				if err != nil {
					return nil, err
				}
				l = &LikeExpr{X: l, Pattern: pat, Not: not}
			}
		default:
			return l, nil
		}
	}
}

func (p *parser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tkSymbol || (t.text != "+" && t.text != "-") {
			return l, nil
		}
		p.next()
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: t.text, L: l, R: r}
	}
}

func (p *parser) mulExpr() (Expr, error) {
	l, err := p.concatExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tkSymbol || (t.text != "*" && t.text != "/" && t.text != "%") {
			return l, nil
		}
		p.next()
		r, err := p.concatExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: t.text, L: l, R: r}
	}
}

func (p *parser) concatExpr() (Expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptSym("||") {
		r, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "||", L: l, R: r}
	}
	return l, nil
}

func (p *parser) unaryExpr() (Expr, error) {
	t := p.peek()
	if t.kind == tkSymbol && (t.text == "-" || t.text == "+") {
		p.next()
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		if t.text == "+" {
			return x, nil
		}
		// Fold negation of numeric literals.
		if lit, ok := x.(*Literal); ok {
			switch lit.Val.Type() {
			case record.TypeInt:
				return &Literal{Val: record.Int(-lit.Val.Int())}, nil
			case record.TypeFloat:
				return &Literal{Val: record.Float(-lit.Val.Float())}, nil
			}
		}
		return &UnaryExpr{Op: "-", X: x}, nil
	}
	return p.primaryExpr()
}

func (p *parser) primaryExpr() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tkNumber:
		p.next()
		return numberLiteral(t.text)
	case tkString:
		p.next()
		return &Literal{Val: record.Text(t.text)}, nil
	case tkParam:
		p.next()
		idx := p.params
		p.params++
		return &ParamRef{Index: idx}, nil
	case tkKeyword:
		switch t.text {
		case "NULL":
			p.next()
			return &Literal{Val: record.Null()}, nil
		case "TRUE":
			p.next()
			return &Literal{Val: record.Int(1)}, nil
		case "FALSE":
			p.next()
			return &Literal{Val: record.Int(0)}, nil
		case "CASE":
			return p.caseExpr()
		case "CAST":
			return p.castExpr()
		}
		return nil, p.errf("unexpected keyword in expression")
	case tkSymbol:
		if t.text == "(" {
			p.next()
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		return nil, p.errf("unexpected symbol in expression")
	case tkIdent:
		p.next()
		name := t.text
		// Function call?
		if p.acceptSym("(") {
			return p.funcCall(name)
		}
		// Qualified column?
		if p.acceptSym(".") {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &ColumnRef{Table: name, Name: col}, nil
		}
		return &ColumnRef{Name: name}, nil
	}
	return nil, p.errf("unexpected token in expression")
}

func (p *parser) funcCall(name string) (Expr, error) {
	f := &FuncCall{Name: strings.ToLower(name)}
	if p.acceptSym(")") {
		return f, nil
	}
	if p.acceptSym("*") {
		f.Star = true
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		return f, nil
	}
	if p.acceptKw("DISTINCT") {
		f.Distinct = true
	}
	for {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		f.Args = append(f.Args, e)
		if !p.acceptSym(",") {
			break
		}
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	return f, nil
}

func (p *parser) caseExpr() (Expr, error) {
	p.next() // CASE
	c := &CaseExpr{}
	if t := p.peek(); !(t.kind == tkKeyword && t.text == "WHEN") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		c.Operand = e
	}
	for p.acceptKw("WHEN") {
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("THEN"); err != nil {
			return nil, err
		}
		res, err := p.expr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, WhenClause{Cond: cond, Result: res})
	}
	if len(c.Whens) == 0 {
		return nil, p.errf("CASE requires at least one WHEN")
	}
	if p.acceptKw("ELSE") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKw("END"); err != nil {
		return nil, err
	}
	return c, nil
}

// castExpr parses CAST(expr AS type); it compiles to the cast()
// builtin function.
func (p *parser) castExpr() (Expr, error) {
	p.next() // CAST
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("AS"); err != nil {
		return nil, err
	}
	var typeParts []string
	for p.peek().kind == tkIdent {
		typeParts = append(typeParts, p.next().text)
	}
	if len(typeParts) == 0 {
		return nil, p.errf("expected type name in CAST")
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	return &FuncCall{
		Name: "cast",
		Args: []Expr{e, &Literal{Val: record.Text(strings.ToUpper(strings.Join(typeParts, " ")))}},
	}, nil
}

func numberLiteral(text string) (Expr, error) {
	if !strings.ContainsAny(text, ".eE") {
		n, err := strconv.ParseInt(text, 10, 64)
		if err == nil {
			return &Literal{Val: record.Int(n)}, nil
		}
		// Integer overflow: fall through to float like SQLite.
	}
	f, err := strconv.ParseFloat(text, 64)
	if err != nil {
		return nil, fmt.Errorf("sql: bad numeric literal %q", text)
	}
	return &Literal{Val: record.Float(f)}, nil
}
