package sql

import (
	"fmt"
	"strings"

	"rql/internal/record"
)

// EXPLAIN support: `EXPLAIN SELECT ...` returns one row per plan node,
// rendered as an indented tree. The executor tree is described after
// planning, so EXPLAIN shows exactly the access paths a query will use
// (table scan vs index scan, native-index join vs automatic transient
// index), which is how the Figure 9 experiments were validated.

// ExplainStmt wraps a SELECT for plan display.
type ExplainStmt struct{ Select *SelectStmt }

func (*ExplainStmt) stmt() {}

// describe renders an iterator tree as indented plan lines.
func describe(it any, depth int, out *[]string) {
	pad := strings.Repeat("  ", depth)
	add := func(format string, args ...any) {
		*out = append(*out, pad+fmt.Sprintf(format, args...))
	}
	switch x := it.(type) {
	case *oneRowIter:
		add("CONSTANT ROW")
	case *tableScanIter:
		add("SCAN TABLE (%d columns)", x.ncols)
	case *indexScanIter:
		kind := "RANGE"
		if x.eqPrefix != nil {
			kind = "EQUALITY"
		}
		add("SEARCH TABLE %s USING INDEX (%s)", x.table.Name, kind)
	case *filterIter:
		add("FILTER")
		describe(x.src, depth+1, out)
	case *projectIter:
		add("PROJECT (%d expressions)", len(x.exprs))
		describe(x.src, depth+1, out)
	case *autoIndexJoin:
		add("JOIN USING AUTOMATIC COVERING INDEX (transient B-tree)")
		describe(x.outer, depth+1, out)
	case *indexJoinIter:
		add("JOIN USING NATIVE INDEX %s ON %s", x.index.Name, x.table.Name)
		describe(x.outer, depth+1, out)
	case *nlJoinIter:
		if x.leftOuter {
			add("LEFT OUTER NESTED-LOOP JOIN (%d inner rows materialized)", len(x.inner))
		} else {
			add("NESTED-LOOP JOIN (%d inner rows materialized)", len(x.inner))
		}
		describe(x.outer, depth+1, out)
	case *aggregateIter:
		add("AGGREGATE (%d group expressions, %d aggregates)", len(x.groupBy), len(x.specs))
		describe(x.src, depth+1, out)
	case *sliceIter:
		add("MATERIALIZED SUBQUERY (%d rows)", len(x.rows))
	case *finalIter:
		switch {
		case len(x.orderBy) > 0 && x.limit >= 0:
			add("SORT + LIMIT %d OFFSET %d", x.limit, x.offset)
		case len(x.orderBy) > 0:
			add("SORT (%d terms)", len(x.orderBy))
		case x.limit >= 0:
			add("LIMIT %d OFFSET %d", x.limit, x.offset)
		default:
			add("OUTPUT")
		}
		describe(x.pairs, depth+1, out)
	case *distinctPairIter:
		add("DISTINCT")
		describe(x.src, depth+1, out)
	case *passPairIter:
		describe(x.src, depth, out)
	case *projectPairIter:
		add("PROJECT (%d expressions)", len(x.exprs))
		describe(x.src, depth+1, out)
	default:
		add("%T", it)
	}
}

// execExplain plans the wrapped SELECT and streams the plan lines.
func (c *Conn) execExplain(s *ExplainStmt, cb RowCallback, params []record.Value, stats *ExecStats) error {
	ec, err := c.newReadCtx(nil, 0, params, stats)
	if err != nil {
		return err
	}
	defer ec.close()
	it, _, err := planSelect(s.Select, ec)
	if err != nil {
		return err
	}
	defer it.Close()
	var lines []string
	describe(it, 0, &lines)
	for _, line := range lines {
		stats.RowsReturned++
		if cb != nil {
			if err := cb([]string{"plan"}, []record.Value{record.Text(line)}); err != nil {
				return err
			}
		}
	}
	return nil
}
