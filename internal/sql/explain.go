package sql

import (
	"fmt"
	"strings"
	"time"

	"rql/internal/obs"
	"rql/internal/record"
	"rql/internal/retro"
)

// EXPLAIN support: `EXPLAIN SELECT ...` returns one row per plan node,
// rendered as an indented tree. The executor tree is described after
// planning, so EXPLAIN shows exactly the access paths a query will use
// (table scan vs index scan, native-index join vs automatic transient
// index), which is how the Figure 9 experiments were validated.
//
// `EXPLAIN ANALYZE SELECT ...` additionally executes the statement —
// through the exact iterator tree the plan displays — and appends the
// measured profile: the statement's execution statistics and, when the
// SELECT drove a retrospective mechanism, one line per iteration with
// the Figures 8–13 cost breakdown (billed Pagelog reads, cache hits,
// pruned/replayed rows, device queue-wait, prefetch hits). Execution is
// observation-only: side effects, counters and LastStats are identical
// to running the statement plainly; only the rows streamed to the
// client differ.

// ExplainStmt wraps a SELECT for plan display; with Analyze set the
// statement is also executed and the report carries its profile.
type ExplainStmt struct {
	Select  *SelectStmt
	Analyze bool
}

func (*ExplainStmt) stmt() {}

// describe renders an iterator tree as indented plan lines.
func describe(it any, depth int, out *[]string) {
	pad := strings.Repeat("  ", depth)
	add := func(format string, args ...any) {
		*out = append(*out, pad+fmt.Sprintf(format, args...))
	}
	switch x := it.(type) {
	case *oneRowIter:
		add("CONSTANT ROW")
	case *tableScanIter:
		add("SCAN TABLE (%d columns)", x.ncols)
	case *indexScanIter:
		kind := "RANGE"
		if x.eqPrefix != nil {
			kind = "EQUALITY"
		}
		add("SEARCH TABLE %s USING INDEX (%s)", x.table.Name, kind)
	case *filterIter:
		add("FILTER")
		describe(x.src, depth+1, out)
	case *projectIter:
		add("PROJECT (%d expressions)", len(x.exprs))
		describe(x.src, depth+1, out)
	case *autoIndexJoin:
		add("JOIN USING AUTOMATIC COVERING INDEX (transient B-tree)")
		describe(x.outer, depth+1, out)
	case *indexJoinIter:
		add("JOIN USING NATIVE INDEX %s ON %s", x.index.Name, x.table.Name)
		describe(x.outer, depth+1, out)
	case *nlJoinIter:
		if x.leftOuter {
			add("LEFT OUTER NESTED-LOOP JOIN (%d inner rows materialized)", len(x.inner))
		} else {
			add("NESTED-LOOP JOIN (%d inner rows materialized)", len(x.inner))
		}
		describe(x.outer, depth+1, out)
	case *aggregateIter:
		add("AGGREGATE (%d group expressions, %d aggregates)", len(x.groupBy), len(x.specs))
		describe(x.src, depth+1, out)
	case *sliceIter:
		add("MATERIALIZED SUBQUERY (%d rows)", len(x.rows))
	case *finalIter:
		switch {
		case len(x.orderBy) > 0 && x.limit >= 0:
			add("SORT + LIMIT %d OFFSET %d", x.limit, x.offset)
		case len(x.orderBy) > 0:
			add("SORT (%d terms)", len(x.orderBy))
		case x.limit >= 0:
			add("LIMIT %d OFFSET %d", x.limit, x.offset)
		default:
			add("OUTPUT")
		}
		describe(x.pairs, depth+1, out)
	case *distinctPairIter:
		add("DISTINCT")
		describe(x.src, depth+1, out)
	case *passPairIter:
		describe(x.src, depth, out)
	case *projectPairIter:
		add("PROJECT (%d expressions)", len(x.exprs))
		describe(x.src, depth+1, out)
	default:
		add("%T", it)
	}
}

// execExplain plans the wrapped SELECT and streams the plan lines.
func (c *Conn) execExplain(s *ExplainStmt, cb RowCallback, params []record.Value, stats *ExecStats) error {
	ec, err := c.newReadCtx(nil, 0, params, stats)
	if err != nil {
		return err
	}
	defer ec.close()
	it, _, err := planSelect(s.Select, ec)
	if err != nil {
		return err
	}
	defer it.Close()
	var lines []string
	describe(it, 0, &lines)
	for _, line := range lines {
		stats.RowsReturned++
		if cb != nil {
			if err := cb([]string{"plan"}, []record.Value{record.Text(line)}); err != nil {
				return err
			}
		}
	}
	return nil
}

var explainCols = []string{"plan"}

// execExplainAnalyze executes the wrapped SELECT for real and streams
// the plan annotated with the measured profile. The execution mirrors
// execSelect exactly — same context, same planner, same iterator drain,
// same finalization — so every counter the paper's figures bill
// (Pagelog reads, cache hits, SPT builds, pruned iterations) is
// byte-identical to a plain run of the statement; the property test
// pins this. stats.RowsReturned likewise reports the statement's own
// result rows, not the report lines.
func (c *Conn) execExplainAnalyze(s *ExplainStmt, set *ReaderSet, asOf retro.SnapshotID, cb RowCallback, params []record.Value, stats *ExecStats) error {
	sel := s.Select
	if sel.AsOf != nil {
		v, err := c.constEval(sel.AsOf, params)
		if err != nil {
			return err
		}
		if v.IsNull() {
			return fmt.Errorf("sql: AS OF requires a snapshot id")
		}
		asOf = retro.SnapshotID(v.AsInt())
	}
	c.lastMech = nil
	start := time.Now()
	ec, err := c.newReadCtx(set, asOf, params, stats)
	if err != nil {
		return err
	}
	var lines []string
	err = func() error {
		var planStart time.Time
		if c.curStmt != nil {
			planStart = time.Now()
		}
		it, _, err := planSelect(sel, ec)
		if c.curStmt != nil {
			obs.Record(c.curStmt, "sql.plan", planStart, time.Since(planStart))
		}
		if err != nil {
			return err
		}
		defer it.Close()
		describe(it, 0, &lines)
		for {
			row, err := it.Next()
			if err != nil {
				return err
			}
			if row == nil {
				return nil
			}
			stats.RowsReturned++
		}
	}()
	if ferr := ec.finalize(err == nil); err == nil {
		err = ferr
	}
	// Close before rendering: it folds the snapshot reader's counters
	// into stats, which the summary line below reports.
	ec.close()
	wall := time.Since(start)
	if err != nil {
		return err
	}

	emit := func(format string, args ...any) error {
		if cb == nil {
			return nil
		}
		return cb(explainCols, []record.Value{record.Text(fmt.Sprintf(format, args...))})
	}
	for _, line := range lines {
		if err := emit("%s", line); err != nil {
			return err
		}
	}
	if err := emit("EXECUTED rows=%d wall=%s pagelog_reads=%d cache_hits=%d db_reads=%d spt_build=%s queue_wait=%s prefetch_hits=%d",
		stats.RowsReturned, fmtDur(wall), stats.PagelogReads, stats.CacheHits,
		stats.DBReads, fmtDur(stats.SPTBuildTime), fmtDur(stats.QueueWait),
		stats.PrefetchHits); err != nil {
		return err
	}
	p := c.lastMech
	if p == nil {
		return nil
	}
	prune := ""
	if p.PruneReason != "" {
		prune = " prune_off=" + quoteReason(p.PruneReason)
	}
	if err := emit("MECHANISM %s iterations=%d pruned=%d replayed_rows=%d prefetch_hits=%d prefetch_wasted=%d%s",
		p.Mechanism, len(p.Iterations), p.PrunedIters, p.ReplayedRows,
		p.PrefetchHits, p.PrefetchWasted, prune); err != nil {
		return err
	}
	for _, it := range p.Iterations {
		if it.Pruned {
			if err := emit("  ITERATION snap=%d PRUNED replayed_rows=%d delta_pages=%d",
				it.Snapshot, it.Rows, it.DeltaPages); err != nil {
				return err
			}
			continue
		}
		if err := emit("  ITERATION snap=%d wall=%s spt_build=%s index=%s eval=%s udf=%s io=%s queue_wait=%s pagelog_reads=%d cache_hits=%d prefetch_hits=%d rows=%d",
			it.Snapshot, fmtDur(it.Wall), fmtDur(it.SPTBuild), fmtDur(it.IndexCreate),
			fmtDur(it.QueryEval), fmtDur(it.UDF), fmtDur(it.IOTime), fmtDur(it.QueueWait),
			it.PagelogReads, it.CacheHits, it.PrefetchHits, it.Rows); err != nil {
			return err
		}
	}
	return nil
}

// fmtDur renders a duration at microsecond precision — enough for the
// modeled costs, stable enough to read in a terminal column.
func fmtDur(d time.Duration) string { return d.Round(time.Microsecond).String() }

// quoteReason makes a prune-off reason a single report token.
func quoteReason(s string) string { return `"` + strings.ReplaceAll(s, `"`, `'`) + `"` }
