// Package sql implements the SQL engine that plays SQLite's role in
// the paper's stack: a parser, planner and volcano-style executor over
// B+tree tables and indexes, with the Retro surface syntax the paper
// relies on (SELECT AS OF, COMMIT WITH SNAPSHOT), a scalar-UDF
// framework with sqlite3_exec-style per-row callbacks, automatic
// transient indexes for un-indexed equi-joins, and a two-store model
// (snapshotable main database + non-snapshotable side database for
// SnapIds and result tables).
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer tokens.
type tokenKind int

const (
	tkEOF tokenKind = iota
	tkIdent
	tkKeyword
	tkString // 'quoted'
	tkNumber // integer or float literal
	tkParam  // ?
	tkSymbol // punctuation and operators
)

type token struct {
	kind tokenKind
	text string // keywords are upper-cased; identifiers keep their case
	pos  int
}

// keywords recognized by the parser. Identifiers matching these (case
// insensitively) lex as tkKeyword.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "OFFSET": true, "AS": true,
	"OF": true, "DISTINCT": true, "ALL": true, "AND": true, "OR": true,
	"NOT": true, "NULL": true, "IS": true, "IN": true, "BETWEEN": true,
	"LIKE": true, "CASE": true, "WHEN": true, "THEN": true, "ELSE": true,
	"END": true, "CAST": true, "ASC": true, "DESC": true, "JOIN": true,
	"INNER": true, "LEFT": true, "OUTER": true, "CROSS": true, "ON": true,
	"INSERT": true, "INTO": true, "VALUES": true, "UPDATE": true, "SET": true,
	"DELETE": true, "CREATE": true, "TABLE": true, "INDEX": true,
	"UNIQUE": true, "DROP": true, "IF": true, "EXISTS": true, "TEMP": true,
	"TEMPORARY": true, "PRIMARY": true, "KEY": true, "BEGIN": true,
	"COMMIT": true, "ROLLBACK": true, "TRANSACTION": true, "WITH": true,
	"SNAPSHOT": true, "TRUE": true, "FALSE": true, "DEFAULT": true,
	"EXPLAIN": true, "RETRO": true, "VIEW": true, "REFRESH": true,
}

// lexer splits SQL text into tokens.
type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes src. It returns an error on unterminated strings or
// unexpected characters.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpaceAndComments()
		if l.pos >= len(l.src) {
			l.emit(tkEOF, "", l.pos)
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case isIdentStart(rune(c)):
			l.lexWord(start)
		case c >= '0' && c <= '9':
			l.lexNumber(start)
		case c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]):
			l.lexNumber(start)
		case c == '\'':
			if err := l.lexString(start); err != nil {
				return nil, err
			}
		case c == '"' || c == '`' || c == '[':
			if err := l.lexQuotedIdent(start); err != nil {
				return nil, err
			}
		case c == '?':
			l.pos++
			l.emit(tkParam, "?", start)
		default:
			if err := l.lexSymbol(start); err != nil {
				return nil, err
			}
		}
	}
}

func (l *lexer) emit(kind tokenKind, text string, pos int) {
	l.toks = append(l.toks, token{kind: kind, text: text, pos: pos})
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				l.pos = len(l.src)
			} else {
				l.pos += 2 + end + 2
			}
		default:
			return
		}
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(c byte) bool {
	return c == '_' || c == '$' || isDigit(c) ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c >= 0x80
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func (l *lexer) lexWord(start int) {
	for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
		l.pos++
	}
	word := l.src[start:l.pos]
	if keywords[strings.ToUpper(word)] {
		l.emit(tkKeyword, strings.ToUpper(word), start)
	} else {
		l.emit(tkIdent, word, start)
	}
}

func (l *lexer) lexNumber(start int) {
	seenDot, seenExp := false, false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case isDigit(c):
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
		case (c == 'e' || c == 'E') && !seenExp && l.pos > start:
			seenExp = true
			if l.pos+1 < len(l.src) && (l.src[l.pos+1] == '+' || l.src[l.pos+1] == '-') {
				l.pos++
			}
		default:
			l.emit(tkNumber, l.src[start:l.pos], start)
			return
		}
		l.pos++
	}
	l.emit(tkNumber, l.src[start:l.pos], start)
}

func (l *lexer) lexString(start int) error {
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				sb.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.emit(tkString, sb.String(), start)
			return nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sql: unterminated string literal at offset %d", start)
}

func (l *lexer) lexQuotedIdent(start int) error {
	open := l.src[l.pos]
	close := open
	if open == '[' {
		close = ']'
	}
	l.pos++
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == close {
			if close != ']' && l.pos+1 < len(l.src) && l.src[l.pos+1] == close {
				sb.WriteByte(close)
				l.pos += 2
				continue
			}
			l.pos++
			l.emit(tkIdent, sb.String(), start)
			return nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sql: unterminated quoted identifier at offset %d", start)
}

// multi-character operators, longest first.
var symbols = []string{"<>", "<=", ">=", "==", "!=", "||", "(", ")", ",", ";", "+", "-", "*", "/", "%", "<", ">", "=", "."}

func (l *lexer) lexSymbol(start int) error {
	rest := l.src[l.pos:]
	for _, s := range symbols {
		if strings.HasPrefix(rest, s) {
			l.pos += len(s)
			l.emit(tkSymbol, s, start)
			return nil
		}
	}
	return fmt.Errorf("sql: unexpected character %q at offset %d", l.src[l.pos], start)
}
