package sql

import "time"

// Mechanism run profiles. The RQL mechanism layer sits above this
// package (it imports sql, so sql cannot import it back); at the end of
// a statement that drove a mechanism, its finalizer pushes the run's
// per-iteration cost breakdown down to the connection in this neutral
// shape. Two consumers: EXPLAIN ANALYZE renders the profile as report
// rows, and the slow-query log picks up the mechanism name, billed
// Pagelog reads, and pruned-iteration count.

// MechIterProfile is one mechanism iteration — one snapshot of the Qs
// set — mirroring the paper's Figures 8–13 cost breakdown.
type MechIterProfile struct {
	Snapshot uint64

	Wall        time.Duration // modeled iteration total (SPT+index+eval+UDF+IO)
	SPTBuild    time.Duration
	IndexCreate time.Duration
	QueryEval   time.Duration
	UDF         time.Duration
	IOTime      time.Duration
	QueueWait   time.Duration // device-queue contention; excluded from Wall

	PagelogReads int
	CacheHits    int
	PrefetchHits int
	Rows         int // Qq rows processed (or replayed, when pruned)

	Pruned     bool
	DeltaPages int
}

// MechProfile is a completed mechanism run.
type MechProfile struct {
	Mechanism      string
	PrunedIters    int
	ReplayedRows   int
	PruneReason    string // why pruning was off ("" = active)
	PrefetchHits   int
	PrefetchWasted int
	Iterations     []MechIterProfile
}

// NoteMechRun records that the current statement completed a
// retrospective mechanism run. Called by the mechanism layer's
// end-of-statement finalizer, while the statement is still executing:
// the profile feeds the slow-query log's mechanism columns and EXPLAIN
// ANALYZE's per-iteration report. The iteration Pagelog reads are
// billed to the batch's slow-query cost here because they happen in
// nested Qq sub-batches whose own cost accounting is scoped out by the
// save/restore in execAsOf.
func (c *Conn) NoteMechRun(p *MechProfile) {
	c.lastMech = p
	if p == nil {
		return
	}
	c.slowCost.Mechanism = p.Mechanism
	c.slowCost.PrunedIters = int64(p.PrunedIters)
	for _, it := range p.Iterations {
		c.slowCost.PagelogReads += int64(it.PagelogReads)
	}
}
