package sql

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Materialized retro views. The SQL layer owns the durable definition
// (a "view" catalog row in the non-snapshotable side store) and the DDL
// statements; the incremental maintenance machinery lives above it (the
// core package's ViewManager) and attaches through RetroViewHook. The
// result rows themselves land in an ordinary side-store table with the
// view's name, so `SELECT * FROM v` needs no planner changes.

// RetroViewHook is implemented by the view maintenance layer.
// ValidateView runs inside CREATE RETRO VIEW before the catalog write
// and may reject the definition (unknown mechanism, malformed args).
// ViewCreated/ViewDropped run after the DDL's side-store transaction
// committed; ViewRefresh synchronously catches a view up to the latest
// declared snapshot.
type RetroViewHook interface {
	ValidateView(def RetroViewDef) error
	ViewCreated(def RetroViewDef)
	ViewDropped(name string)
	ViewRefresh(name string) error
}

// SetRetroViewHook attaches the view maintenance layer; nil detaches
// it (view DDL then fails).
func (db *DB) SetRetroViewHook(h RetroViewHook) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.viewHook = h
}

func (db *DB) retroViewHook() RetroViewHook {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.viewHook
}

// SetViewDDLHook registers fn to observe committed retro-view DDL
// (create=true with the full definition, create=false with only
// def.Name on drop). Replication ships view DDL logically through this
// hook: view definitions live in the side store, which page-level
// deltas do not cover. nil unregisters.
func (db *DB) SetViewDDLHook(fn func(create bool, def RetroViewDef)) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.viewDDLHook = fn
}

func (db *DB) notifyViewDDL(create bool, def RetroViewDef) {
	db.mu.Lock()
	fn := db.viewDDLHook
	db.mu.Unlock()
	if fn != nil {
		fn(create, def)
	}
}

// SetSnapshotHook registers fn to observe every snapshot declared
// through CommitWithSnapshot, called after the commit returned — the
// snapshot's pages are installed and readable by then (group commits
// drain in LSN order). The view maintenance layer uses it as its
// refresh trigger. fn must not block: it runs on the committing
// connection's goroutine. nil unregisters.
func (db *DB) SetSnapshotHook(fn func(snapID uint64)) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.snapHook = fn
}

func (db *DB) notifySnapshot(snapID uint64) {
	db.mu.Lock()
	fn := db.snapHook
	db.mu.Unlock()
	if fn != nil {
		fn(snapID)
	}
}

// ListViews returns the retro view definitions in name order.
func (db *DB) ListViews() ([]RetroViewDef, error) {
	rt, err := db.side.BeginRead()
	if err != nil {
		return nil, err
	}
	defer rt.Close()
	sch, err := db.currentSchema(db.side, rt, rt.LSN(), true)
	if err != nil {
		return nil, err
	}
	out := make([]RetroViewDef, 0, len(sch.views))
	for _, v := range sch.views {
		out = append(out, *v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// GetView returns a view's definition, or ErrNoView.
func (db *DB) GetView(name string) (RetroViewDef, error) {
	rt, err := db.side.BeginRead()
	if err != nil {
		return RetroViewDef{}, err
	}
	defer rt.Close()
	sch, err := db.currentSchema(db.side, rt, rt.LSN(), true)
	if err != nil {
		return RetroViewDef{}, err
	}
	v := sch.view(name)
	if v == nil {
		return RetroViewDef{}, fmt.Errorf("%w: %s", ErrNoView, name)
	}
	return *v, nil
}

// ErrNoView reports a missing retro view.
var ErrNoView = errors.New("sql: no such retro view")

func (w *writeEnv) execCreateRetroView(s *CreateRetroViewStmt) error {
	hook := w.ec.conn.db.retroViewHook()
	if hook == nil {
		return errors.New("sql: retro views are not supported on this database")
	}
	sch := w.ec.sideSchema
	if sch.view(s.Name) != nil {
		return fmt.Errorf("%w: retro view %s", ErrExists, s.Name)
	}
	// The view materializes into a side-store table with its own name,
	// so the name must be free in both stores.
	if sch.table(s.Name) != nil || w.ec.mainSchema.table(s.Name) != nil {
		return fmt.Errorf("%w: table %s", ErrExists, s.Name)
	}
	def := &RetroViewDef{
		Name:      s.Name,
		Mechanism: s.Mechanism,
		Qq:        s.Qq,
		Extra:     s.Extra,
		HasExtra:  s.HasExtra,
	}
	if err := hook.ValidateView(*def); err != nil {
		return err
	}
	if err := putView(w.tx, def); err != nil {
		return err
	}
	sch.views[strings.ToLower(def.Name)] = def
	return nil
}

func (w *writeEnv) execDropRetroView(s *DropRetroViewStmt) error {
	sch := w.ec.sideSchema
	v := sch.view(s.Name)
	if v == nil {
		if s.IfExists {
			return nil
		}
		return fmt.Errorf("%w: %s", ErrNoView, s.Name)
	}
	// Drop the materialized result table (and its indexes) with the
	// definition, in the same side-store transaction. It may not exist
	// yet: the table is created lazily at first materialization.
	if t := sch.table(v.Name); t != nil {
		if err := w.execDrop(&DropStmt{Name: t.Name}); err != nil {
			return err
		}
	}
	if err := deleteCatalogEntry(w.tx, "view", v.Name); err != nil {
		return err
	}
	delete(sch.views, strings.ToLower(v.Name))
	return nil
}
