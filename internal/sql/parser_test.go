package sql

import (
	"strings"
	"testing"

	"rql/internal/record"
)

func parseOne(t *testing.T, src string) Statement {
	t.Helper()
	stmt, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return stmt
}

func TestLexerBasics(t *testing.T) {
	toks, err := lex(`SELECT a, 'it''s', 3.14, 1e3, x2 FROM "weird ""name""" -- comment
		/* block
		comment */ WHERE ?`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokenKind
	var texts []string
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
		texts = append(texts, tk.text)
	}
	want := []string{"SELECT", "a", ",", "it's", ",", "3.14", ",", "1e3", ",", "x2",
		"FROM", `weird "name"`, "WHERE", "?", ""}
	if len(texts) != len(want) {
		t.Fatalf("token texts: %q", texts)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Errorf("token %d: %q want %q", i, texts[i], want[i])
		}
	}
	if kinds[3] != tkString || kinds[5] != tkNumber || kinds[11] != tkIdent {
		t.Errorf("kinds: %v", kinds)
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{"'open", `"open`, "[open", "SELECT @"} {
		if _, err := lex(src); err == nil {
			t.Errorf("lex(%q) should fail", src)
		}
	}
	// An unterminated block comment is swallowed to EOF (SQLite-ish).
	if toks, err := lex("SELECT 1 /* open"); err != nil || len(toks) != 3 {
		t.Errorf("unterminated block comment: %v %v", toks, err)
	}
}

func TestParseSelectShapes(t *testing.T) {
	s := parseOne(t, `SELECT AS OF 3 DISTINCT a, t.b AS bee, COUNT(*)
		FROM t1 AS x, t2 LEFT JOIN t3 ON x.a = t3.a
		WHERE a > 1 AND b IN (1,2) GROUP BY a HAVING COUNT(*) > 1
		ORDER BY bee DESC, 1 LIMIT 10 OFFSET 2`).(*SelectStmt)
	if s.AsOf == nil || !s.Distinct || len(s.Cols) != 3 || len(s.From) != 3 {
		t.Fatalf("parsed shape: %+v", s)
	}
	if s.From[0].Alias != "x" || !s.From[2].LeftJoin || s.From[2].JoinCond == nil {
		t.Errorf("from refs: %+v", s.From)
	}
	if s.Where == nil || len(s.GroupBy) != 1 || s.Having == nil {
		t.Errorf("clauses: %+v", s)
	}
	if len(s.OrderBy) != 2 || !s.OrderBy[0].Desc || s.OrderBy[1].Desc {
		t.Errorf("order by: %+v", s.OrderBy)
	}
	if s.Limit == nil || s.Offset == nil {
		t.Errorf("limit/offset: %+v", s)
	}
}

func TestParseSubqueryInFrom(t *testing.T) {
	s := parseOne(t, `SELECT x FROM (SELECT a AS x FROM t) sub`).(*SelectStmt)
	if s.From[0].Subquery == nil || s.From[0].Alias != "sub" {
		t.Fatalf("subquery ref: %+v", s.From[0])
	}
}

func TestParseExpressionsPrecedence(t *testing.T) {
	// 1 + 2 * 3 parses as 1 + (2 * 3).
	s := parseOne(t, `SELECT 1 + 2 * 3`).(*SelectStmt)
	add := s.Cols[0].Expr.(*BinaryExpr)
	if add.Op != "+" {
		t.Fatalf("top op %s", add.Op)
	}
	if mul := add.R.(*BinaryExpr); mul.Op != "*" {
		t.Fatalf("right op %s", mul.Op)
	}
	// a = 1 OR b = 2 AND c = 3 parses as a=1 OR ((b=2) AND (c=3)).
	s = parseOne(t, `SELECT a = 1 OR b = 2 AND c = 3`).(*SelectStmt)
	or := s.Cols[0].Expr.(*BinaryExpr)
	if or.Op != "OR" || or.R.(*BinaryExpr).Op != "AND" {
		t.Fatalf("logical precedence wrong: %s / %T", or.Op, or.R)
	}
	// || binds tighter than comparison.
	s = parseOne(t, `SELECT a || b = c`).(*SelectStmt)
	eq := s.Cols[0].Expr.(*BinaryExpr)
	if eq.Op != "=" || eq.L.(*BinaryExpr).Op != "||" {
		t.Fatalf("concat precedence wrong")
	}
}

func TestParseNegativeNumberFolding(t *testing.T) {
	s := parseOne(t, `SELECT -5, -2.5, -x`).(*SelectStmt)
	if lit := s.Cols[0].Expr.(*Literal); lit.Val.Int() != -5 {
		t.Errorf("folded int: %v", lit.Val)
	}
	if lit := s.Cols[1].Expr.(*Literal); lit.Val.Float() != -2.5 {
		t.Errorf("folded float: %v", lit.Val)
	}
	if _, ok := s.Cols[2].Expr.(*UnaryExpr); !ok {
		t.Errorf("column negation should stay unary")
	}
}

func TestParseIntegerOverflowBecomesFloat(t *testing.T) {
	s := parseOne(t, `SELECT 99999999999999999999`).(*SelectStmt)
	lit := s.Cols[0].Expr.(*Literal)
	if lit.Val.Type() != record.TypeFloat {
		t.Errorf("overflowing literal type: %v", lit.Val.Type())
	}
}

func TestParseCaseAndCast(t *testing.T) {
	s := parseOne(t, `SELECT CASE a WHEN 1 THEN 'x' ELSE 'y' END, CAST(a AS TEXT)`).(*SelectStmt)
	c := s.Cols[0].Expr.(*CaseExpr)
	if c.Operand == nil || len(c.Whens) != 1 || c.Else == nil {
		t.Errorf("case: %+v", c)
	}
	f := s.Cols[1].Expr.(*FuncCall)
	if f.Name != "cast" || len(f.Args) != 2 {
		t.Errorf("cast: %+v", f)
	}
}

func TestParseNotVariants(t *testing.T) {
	s := parseOne(t, `SELECT a NOT IN (1), b NOT LIKE 'x%', c NOT BETWEEN 1 AND 2, NOT d`).(*SelectStmt)
	if !s.Cols[0].Expr.(*InExpr).Not {
		t.Error("NOT IN")
	}
	if !s.Cols[1].Expr.(*LikeExpr).Not {
		t.Error("NOT LIKE")
	}
	if !s.Cols[2].Expr.(*BetweenExpr).Not {
		t.Error("NOT BETWEEN")
	}
	if s.Cols[3].Expr.(*UnaryExpr).Op != "NOT" {
		t.Error("NOT prefix")
	}
}

func TestParseDDLAndDML(t *testing.T) {
	ct := parseOne(t, `CREATE TEMP TABLE IF NOT EXISTS t (
		id INTEGER PRIMARY KEY, name VARCHAR(10) NOT NULL, price DECIMAL(8,2) DEFAULT 0)`).(*CreateTableStmt)
	if !ct.Temp || !ct.IfNotExists || len(ct.Cols) != 3 {
		t.Fatalf("create table: %+v", ct)
	}
	if !ct.Cols[0].PrimaryKey || ct.Cols[1].Type != "VARCHAR" || !ct.Cols[1].NotNull {
		t.Errorf("cols: %+v", ct.Cols)
	}
	ci := parseOne(t, `CREATE UNIQUE INDEX IF NOT EXISTS i ON t (a, b)`).(*CreateIndexStmt)
	if !ci.Unique || !ci.IfNotExists || len(ci.Cols) != 2 {
		t.Errorf("create index: %+v", ci)
	}
	ins := parseOne(t, `INSERT INTO t (a, b) VALUES (1, 2), (3, 4)`).(*InsertStmt)
	if len(ins.Cols) != 2 || len(ins.Rows) != 2 {
		t.Errorf("insert: %+v", ins)
	}
	ins2 := parseOne(t, `INSERT INTO t SELECT * FROM u`).(*InsertStmt)
	if ins2.Select == nil {
		t.Error("insert-select")
	}
	up := parseOne(t, `UPDATE t SET a = 1, b = b + 1 WHERE c`).(*UpdateStmt)
	if len(up.Cols) != 2 || up.Where == nil {
		t.Errorf("update: %+v", up)
	}
	del := parseOne(t, `DELETE FROM t`).(*DeleteStmt)
	if del.Where != nil {
		t.Errorf("delete: %+v", del)
	}
	dr := parseOne(t, `DROP INDEX IF EXISTS i`).(*DropStmt)
	if !dr.Index || !dr.IfExists {
		t.Errorf("drop: %+v", dr)
	}
}

func TestParseTransactionStatements(t *testing.T) {
	if _, ok := parseOne(t, `BEGIN TRANSACTION`).(*BeginStmt); !ok {
		t.Error("begin")
	}
	c := parseOne(t, `COMMIT WITH SNAPSHOT`).(*CommitStmt)
	if !c.WithSnapshot {
		t.Error("commit with snapshot")
	}
	if parseOne(t, `COMMIT`).(*CommitStmt).WithSnapshot {
		t.Error("plain commit")
	}
	if _, ok := parseOne(t, `ROLLBACK`).(*RollbackStmt); !ok {
		t.Error("rollback")
	}
}

func TestParseAllMultiStatement(t *testing.T) {
	stmts, err := ParseAll(`;;SELECT 1; SELECT 2;;`)
	if err != nil || len(stmts) != 2 {
		t.Fatalf("ParseAll: %d stmts, %v", len(stmts), err)
	}
	if _, err := ParseAll(`SELECT 1 SELECT 2`); err == nil {
		t.Error("missing semicolon should fail")
	}
}

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		pat, s string
		want   bool
	}{
		{"abc", "abc", true},
		{"abc", "abd", false},
		{"a%", "abc", true},
		{"%c", "abc", true},
		{"%b%", "abc", true},
		{"a_c", "abc", true},
		{"a_c", "abbc", false},
		{"%", "", true},
		{"_", "", false},
		{"%%%", "x", true},
		{"ABC", "abc", true}, // case-insensitive
		{"a%z", "az", true},
	}
	for _, c := range cases {
		if got := likeMatch(c.pat, c.s); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v", c.pat, c.s, got)
		}
	}
}

func TestExprText(t *testing.T) {
	s := parseOne(t, `SELECT a + b, COUNT(DISTINCT x), f(1, 'two'), c IS NOT NULL`).(*SelectStmt)
	for i, want := range []string{"a + b", "count(DISTINCT x)", "f(1, 'two')", "c IS NOT NULL"} {
		if got := exprText(s.Cols[i].Expr); got != want {
			t.Errorf("exprText[%d] = %q, want %q", i, got, want)
		}
	}
}

func TestTypeAffinityMapping(t *testing.T) {
	cases := map[string]affinity{
		"INTEGER": affInteger, "INT": affInteger, "BIGINT": affInteger,
		"TEXT": affText, "VARCHAR": affText, "CLOB": affText,
		"REAL": affReal, "DOUBLE": affReal, "FLOAT": affReal, "DECIMAL": affReal,
		"": affNone, "BLOB": affNone,
	}
	for typ, want := range cases {
		if got := typeAffinity(typ); got != want {
			t.Errorf("typeAffinity(%q) = %v, want %v", typ, got, want)
		}
	}
}

func TestQuotedIdentifiersEndToEnd(t *testing.T) {
	c := testConn(t)
	mustExec(t, c, `CREATE TABLE "weird name" ("a col" INTEGER)`)
	mustExec(t, c, `INSERT INTO "weird name" VALUES (7)`)
	rows := q(t, c, `SELECT "a col" FROM "weird name"`)
	if len(rows) != 1 || rows[0] != "7" {
		t.Errorf("quoted idents: %v", rows)
	}
	if !strings.Contains(quoteIdent(`x"y`), `""`) {
		t.Error("quoteIdent must double embedded quotes")
	}
}
