package sql

import (
	"errors"
	"testing"

	"rql/internal/record"
	"rql/internal/storage"
)

func TestTableWriterInsertLookupUpdate(t *testing.T) {
	c := testConn(t)
	mustExec(t, c, `CREATE TEMP TABLE r (grp TEXT, n INTEGER)`)
	mustExec(t, c, `CREATE INDEX r_grp ON r (grp)`)

	w, err := c.OpenTableWriter("r")
	if err != nil {
		t.Fatal(err)
	}
	if w.Table().Name != "r" || len(w.Table().Cols) != 2 {
		t.Errorf("Table(): %+v", w.Table())
	}
	rowid, err := w.Insert([]record.Value{record.Text("a"), record.Int(1)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Insert([]record.Value{record.Text("b"), record.Int(2)}); err != nil {
		t.Fatal(err)
	}

	// Lookup through the index within the open transaction.
	gotID, row, found, err := w.LookupByIndex("r_grp", []record.Value{record.Text("a")})
	if err != nil || !found || gotID != rowid || row[1].Int() != 1 {
		t.Fatalf("lookup: id=%d row=%v found=%v err=%v", gotID, row, found, err)
	}
	if _, _, found, _ := w.LookupByIndex("r_grp", []record.Value{record.Text("zz")}); found {
		t.Error("lookup of absent key")
	}
	if _, _, _, err := w.LookupByIndex("nope", nil); !errors.Is(err, ErrNoIndex) {
		t.Errorf("unknown index: %v", err)
	}

	// Update maintains the index.
	if err := w.Update(rowid,
		[]record.Value{record.Text("a"), record.Int(1)},
		[]record.Value{record.Text("z"), record.Int(10)}); err != nil {
		t.Fatal(err)
	}
	if _, _, found, _ := w.LookupByIndex("r_grp", []record.Value{record.Text("a")}); found {
		t.Error("old index entry survived update")
	}
	_, row, found, _ = w.LookupByIndex("r_grp", []record.Value{record.Text("z")})
	if !found || row[1].Int() != 10 {
		t.Errorf("updated row: %v %v", row, found)
	}

	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	expectSet(t, q(t, c, `SELECT grp, n FROM r`), "z|10", "b|2")

	// Writer methods after Commit fail cleanly.
	if _, err := w.Insert([]record.Value{record.Text("c"), record.Int(3)}); !errors.Is(err, storage.ErrTxDone) {
		t.Errorf("insert after commit: %v", err)
	}
}

func TestTableWriterRollback(t *testing.T) {
	c := testConn(t)
	mustExec(t, c, `CREATE TABLE r (a)`)
	w, err := c.OpenTableWriter("r")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Insert([]record.Value{record.Int(1)}); err != nil {
		t.Fatal(err)
	}
	w.Rollback()
	expectRows(t, q(t, c, `SELECT COUNT(*) FROM r`), "0")
}

func TestTableWriterJoinsExplicitTx(t *testing.T) {
	c := testConn(t)
	mustExec(t, c, `CREATE TABLE r (a)`)
	mustExec(t, c, `BEGIN`)
	w, err := c.OpenTableWriter("r")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Insert([]record.Value{record.Int(7)}); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil { // hand-off, not a real commit
		t.Fatal(err)
	}
	mustExec(t, c, `ROLLBACK`) // the enclosing tx still owns the write
	expectRows(t, q(t, c, `SELECT COUNT(*) FROM r`), "0")
}

func TestTableWriterMissingTable(t *testing.T) {
	c := testConn(t)
	if _, err := c.OpenTableWriter("missing"); !errors.Is(err, ErrNoTable) {
		t.Errorf("missing table: %v", err)
	}
}

func TestColumnsAPI(t *testing.T) {
	c := testConn(t)
	mustExec(t, c, `CREATE TABLE t (a, b)`)
	cols, err := c.Columns(`SELECT a, b AS bee, COUNT(*) AS cnt FROM t GROUP BY a`, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 3 || cols[0] != "a" || cols[1] != "bee" || cols[2] != "cnt" {
		t.Errorf("Columns: %v", cols)
	}
	// Planning only: no rows touched, works on empty tables.
	if _, err := c.Columns(`INSERT INTO t VALUES (1, 2)`, 0); err == nil {
		t.Error("Columns should reject non-SELECT")
	}
	// Snapshot-bound schema.
	mustExec(t, c, `BEGIN; COMMIT WITH SNAPSHOT`)
	mustExec(t, c, `DROP TABLE t`)
	if _, err := c.Columns(`SELECT * FROM t`, 1); err != nil {
		t.Errorf("Columns over snapshot schema: %v", err)
	}
	if _, err := c.Columns(`SELECT * FROM t`, 0); !errors.Is(err, ErrNoTable) {
		t.Errorf("Columns over current schema after drop: %v", err)
	}
}

func TestObjectsAPI(t *testing.T) {
	c := testConn(t)
	mustExec(t, c, `CREATE TABLE t1 (a)`)
	mustExec(t, c, `CREATE INDEX i1 ON t1 (a)`)
	mustExec(t, c, `CREATE TEMP TABLE tmp1 (b)`)
	objs, err := c.Objects()
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]ObjectInfo{}
	for _, o := range objs {
		found[o.Name] = o
	}
	if o := found["t1"]; o.Kind != "table" || o.Temp {
		t.Errorf("t1: %+v", o)
	}
	if o := found["i1"]; o.Kind != "index" || o.Table != "t1" {
		t.Errorf("i1: %+v", o)
	}
	if o := found["tmp1"]; o.Kind != "table" || !o.Temp {
		t.Errorf("tmp1: %+v", o)
	}
}

func TestTableStatsAPI(t *testing.T) {
	c := testConn(t)
	mustExec(t, c, `CREATE TABLE t (a TEXT)`)
	mustExec(t, c, `CREATE INDEX t_a ON t (a)`)
	for i := 0; i < 50; i++ {
		mustExec(t, c, `INSERT INTO t VALUES ('hello world')`)
	}
	st, err := c.TableStats("t")
	if err != nil {
		t.Fatal(err)
	}
	if st.Rows != 50 || st.DataBytes == 0 || st.IndexBytes == 0 {
		t.Errorf("TableStats: %+v", st)
	}
	if _, err := c.TableStats("nope"); !errors.Is(err, ErrNoTable) {
		t.Errorf("missing table: %v", err)
	}
}
