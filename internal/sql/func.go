package sql

import (
	"fmt"
	"math"
	"strings"

	"rql/internal/record"
)

// FuncDef describes a scalar SQL function: a builtin or a registered
// UDF. The RQL mechanisms are UDFs registered through this interface,
// mirroring the paper's SQLite-UDF implementation.
type FuncDef struct {
	Name    string
	MinArgs int
	MaxArgs int // -1 = variadic
	// Fn is invoked once per row the function appears in.
	Fn func(fc *FuncContext, args []record.Value) (record.Value, error)
}

// FuncContext is passed to every scalar function invocation. UDFs use
// it to reach the connection (to execute nested SQL, as sqlite3 UDFs do
// through the API), the current snapshot, and per-call-site auxiliary
// state that lives for the duration of one statement execution (the
// equivalent of sqlite3_get_auxdata, which the RQL "loop body" UDFs use
// to carry state across Qs iterations).
type FuncContext struct {
	ec       *execCtx
	callSite *FuncCall
}

// Conn returns the connection executing the statement.
func (fc *FuncContext) Conn() *Conn { return fc.ec.conn }

// AsOf returns the snapshot id the enclosing statement runs over
// (0 when it runs over the current state).
func (fc *FuncContext) AsOf() uint64 { return uint64(fc.ec.asOf) }

// Aux returns the per-call-site auxiliary state, creating it with mk on
// first use. State persists across invocations within one statement
// execution and is discarded afterwards.
func (fc *FuncContext) Aux(mk func() any) any {
	if fc.ec.aux == nil {
		fc.ec.aux = make(map[*FuncCall]any)
	}
	if v, ok := fc.ec.aux[fc.callSite]; ok {
		return v
	}
	v := mk()
	fc.ec.aux[fc.callSite] = v
	return v
}

// RegisterFunc registers a scalar function or UDF on the database,
// replacing any previous definition with the same name.
func (db *DB) RegisterFunc(def FuncDef) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.funcs[strings.ToLower(def.Name)] = &def
}

func (db *DB) function(name string) *FuncDef {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.funcs[strings.ToLower(name)]
}

// builtinFuncs returns the standard scalar library.
func builtinFuncs() map[string]*FuncDef {
	m := make(map[string]*FuncDef)
	add := func(def FuncDef) { m[def.Name] = &def }

	add(FuncDef{Name: "abs", MinArgs: 1, MaxArgs: 1, Fn: func(_ *FuncContext, a []record.Value) (record.Value, error) {
		v := a[0]
		switch v.Type() {
		case record.TypeNull:
			return record.Null(), nil
		case record.TypeInt:
			if n := v.Int(); n < 0 {
				return record.Int(-n), nil
			}
			return v, nil
		default:
			return record.Float(math.Abs(v.AsFloat())), nil
		}
	}})
	add(FuncDef{Name: "length", MinArgs: 1, MaxArgs: 1, Fn: func(_ *FuncContext, a []record.Value) (record.Value, error) {
		v := a[0]
		switch v.Type() {
		case record.TypeNull:
			return record.Null(), nil
		case record.TypeBlob:
			return record.Int(int64(len(v.Blob()))), nil
		default:
			return record.Int(int64(len([]rune(v.String())))), nil
		}
	}})
	add(FuncDef{Name: "lower", MinArgs: 1, MaxArgs: 1, Fn: func(_ *FuncContext, a []record.Value) (record.Value, error) {
		if a[0].IsNull() {
			return record.Null(), nil
		}
		return record.Text(strings.ToLower(a[0].String())), nil
	}})
	add(FuncDef{Name: "upper", MinArgs: 1, MaxArgs: 1, Fn: func(_ *FuncContext, a []record.Value) (record.Value, error) {
		if a[0].IsNull() {
			return record.Null(), nil
		}
		return record.Text(strings.ToUpper(a[0].String())), nil
	}})
	add(FuncDef{Name: "substr", MinArgs: 2, MaxArgs: 3, Fn: func(_ *FuncContext, a []record.Value) (record.Value, error) {
		if a[0].IsNull() || a[1].IsNull() {
			return record.Null(), nil
		}
		s := []rune(a[0].String())
		start := int(a[1].AsInt())
		n := len(s)
		// SQLite 1-based indexing; negative counts from the end.
		switch {
		case start > 0:
			start--
		case start < 0:
			start = n + start
			if start < 0 {
				start = 0
			}
		}
		if start >= n {
			return record.Text(""), nil
		}
		end := n
		if len(a) == 3 {
			if a[2].IsNull() {
				return record.Null(), nil
			}
			cnt := int(a[2].AsInt())
			if cnt < 0 {
				cnt = 0
			}
			if start+cnt < end {
				end = start + cnt
			}
		}
		return record.Text(string(s[start:end])), nil
	}})
	add(FuncDef{Name: "coalesce", MinArgs: 2, MaxArgs: -1, Fn: func(_ *FuncContext, a []record.Value) (record.Value, error) {
		for _, v := range a {
			if !v.IsNull() {
				return v, nil
			}
		}
		return record.Null(), nil
	}})
	add(FuncDef{Name: "ifnull", MinArgs: 2, MaxArgs: 2, Fn: func(_ *FuncContext, a []record.Value) (record.Value, error) {
		if !a[0].IsNull() {
			return a[0], nil
		}
		return a[1], nil
	}})
	add(FuncDef{Name: "nullif", MinArgs: 2, MaxArgs: 2, Fn: func(_ *FuncContext, a []record.Value) (record.Value, error) {
		if !a[0].IsNull() && !a[1].IsNull() && record.Compare(a[0], a[1]) == 0 {
			return record.Null(), nil
		}
		return a[0], nil
	}})
	add(FuncDef{Name: "typeof", MinArgs: 1, MaxArgs: 1, Fn: func(_ *FuncContext, a []record.Value) (record.Value, error) {
		switch a[0].Type() {
		case record.TypeNull:
			return record.Text("null"), nil
		case record.TypeInt:
			return record.Text("integer"), nil
		case record.TypeFloat:
			return record.Text("real"), nil
		case record.TypeText:
			return record.Text("text"), nil
		default:
			return record.Text("blob"), nil
		}
	}})
	add(FuncDef{Name: "round", MinArgs: 1, MaxArgs: 2, Fn: func(_ *FuncContext, a []record.Value) (record.Value, error) {
		if a[0].IsNull() {
			return record.Null(), nil
		}
		digits := 0
		if len(a) == 2 {
			digits = int(a[1].AsInt())
		}
		scale := math.Pow(10, float64(digits))
		return record.Float(math.Round(a[0].AsFloat()*scale) / scale), nil
	}})
	add(FuncDef{Name: "min", MinArgs: 2, MaxArgs: -1, Fn: func(_ *FuncContext, a []record.Value) (record.Value, error) {
		best := a[0]
		for _, v := range a[1:] {
			if v.IsNull() || best.IsNull() {
				return record.Null(), nil
			}
			if record.Compare(v, best) < 0 {
				best = v
			}
		}
		return best, nil
	}})
	add(FuncDef{Name: "max", MinArgs: 2, MaxArgs: -1, Fn: func(_ *FuncContext, a []record.Value) (record.Value, error) {
		best := a[0]
		for _, v := range a[1:] {
			if v.IsNull() || best.IsNull() {
				return record.Null(), nil
			}
			if record.Compare(v, best) > 0 {
				best = v
			}
		}
		return best, nil
	}})
	add(FuncDef{Name: "cast", MinArgs: 2, MaxArgs: 2, Fn: func(_ *FuncContext, a []record.Value) (record.Value, error) {
		v, typ := a[0], a[1].Text()
		if v.IsNull() {
			return record.Null(), nil
		}
		switch typeAffinity(typ) {
		case affInteger:
			return record.Int(v.AsInt()), nil
		case affReal:
			return record.Float(v.AsFloat()), nil
		case affText:
			return record.Text(v.String()), nil
		}
		return v, nil
	}})
	// current_snapshot() resolves to the snapshot the statement runs
	// over — the construct the paper's Qq rewriting substitutes (§3).
	// Our executor carries the AS OF binding in the execution context,
	// which is operationally identical to the textual rewrite.
	add(FuncDef{Name: "current_snapshot", MinArgs: 0, MaxArgs: 0, Fn: func(fc *FuncContext, _ []record.Value) (record.Value, error) {
		if fc.AsOf() == 0 {
			return record.Null(), nil
		}
		return record.Int(int64(fc.AsOf())), nil
	}})
	add(FuncDef{Name: "printf", MinArgs: 1, MaxArgs: -1, Fn: func(_ *FuncContext, a []record.Value) (record.Value, error) {
		if a[0].IsNull() {
			return record.Null(), nil
		}
		args := make([]any, 0, len(a)-1)
		for _, v := range a[1:] {
			switch v.Type() {
			case record.TypeInt:
				args = append(args, v.Int())
			case record.TypeFloat:
				args = append(args, v.Float())
			default:
				args = append(args, v.String())
			}
		}
		return record.Text(fmt.Sprintf(a[0].Text(), args...)), nil
	}})
	return m
}
