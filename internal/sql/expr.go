package sql

import (
	"fmt"
	"strconv"
	"strings"

	"rql/internal/record"
)

// colInfo describes one column of an iterator's output row.
type colInfo struct {
	table string // lower-cased table alias ("" for computed columns)
	name  string // lower-cased column name; "#rowid" marks hidden rowids
}

// compileEnv is the name-resolution environment for compiling
// expressions: the input row's columns, optional select-list aliases
// (for GROUP BY / ORDER BY / HAVING), and optional pre-computed
// aggregate slots.
type compileEnv struct {
	cols    []colInfo
	aliases map[string]Expr   // select-list aliases (lower-cased)
	aggIdx  map[*FuncCall]int // aggregate call -> row position
	ec      *execCtx
}

// rowCtx carries the current row during evaluation.
type rowCtx struct {
	row []record.Value
	ec  *execCtx
}

// compiledExpr evaluates an expression against the current row.
type compiledExpr func(rc *rowCtx) (record.Value, error)

// resolveColumn finds the row position of a column reference.
func (env *compileEnv) resolveColumn(ref *ColumnRef) (int, error) {
	name := strings.ToLower(ref.Name)
	table := strings.ToLower(ref.Table)
	if name == "rowid" || name == "oid" || name == "_rowid_" {
		name = "#rowid"
	}
	found := -1
	for i, c := range env.cols {
		if c.name != name {
			continue
		}
		if table != "" && c.table != table {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("sql: ambiguous column %q", ref.Name)
		}
		found = i
	}
	if found < 0 {
		if table != "" {
			return 0, fmt.Errorf("%w: %s.%s", ErrNoColumn, ref.Table, ref.Name)
		}
		return 0, fmt.Errorf("%w: %s", ErrNoColumn, ref.Name)
	}
	return found, nil
}

// compileExpr compiles an expression for evaluation against rows shaped
// like env.cols.
func compileExpr(e Expr, env *compileEnv) (compiledExpr, error) {
	switch x := e.(type) {
	case *Literal:
		v := x.Val
		return func(*rowCtx) (record.Value, error) { return v, nil }, nil

	case *ParamRef:
		idx := x.Index
		return func(rc *rowCtx) (record.Value, error) {
			if idx >= len(rc.ec.params) {
				return record.Value{}, fmt.Errorf("sql: missing value for parameter %d", idx+1)
			}
			return rc.ec.params[idx], nil
		}, nil

	case *ColumnRef:
		if pos, err := env.resolveColumn(x); err == nil {
			return func(rc *rowCtx) (record.Value, error) { return rc.row[pos], nil }, nil
		} else if x.Table == "" && env.aliases != nil {
			if ae, ok := env.aliases[strings.ToLower(x.Name)]; ok {
				// Select-list alias: compile the aliased expression.
				return compileExpr(ae, env)
			}
			return nil, err
		} else {
			return nil, err
		}

	case *UnaryExpr:
		sub, err := compileExpr(x.X, env)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "-":
			return func(rc *rowCtx) (record.Value, error) {
				v, err := sub(rc)
				if err != nil || v.IsNull() {
					return record.Null(), err
				}
				if v.Type() == record.TypeInt {
					return record.Int(-v.Int()), nil
				}
				return record.Float(-v.AsFloat()), nil
			}, nil
		case "NOT":
			return func(rc *rowCtx) (record.Value, error) {
				v, err := sub(rc)
				if err != nil || v.IsNull() {
					return record.Null(), err
				}
				return record.Bool(!v.Truthy()), nil
			}, nil
		}
		return nil, fmt.Errorf("sql: unknown unary operator %q", x.Op)

	case *BinaryExpr:
		return compileBinary(x, env)

	case *IsNullExpr:
		sub, err := compileExpr(x.X, env)
		if err != nil {
			return nil, err
		}
		not := x.Not
		return func(rc *rowCtx) (record.Value, error) {
			v, err := sub(rc)
			if err != nil {
				return record.Value{}, err
			}
			return record.Bool(v.IsNull() != not), nil
		}, nil

	case *BetweenExpr:
		// x BETWEEN lo AND hi  ==  x >= lo AND x <= hi
		rewritten := &BinaryExpr{
			Op: "AND",
			L:  &BinaryExpr{Op: ">=", L: x.X, R: x.Lo},
			R:  &BinaryExpr{Op: "<=", L: x.X, R: x.Hi},
		}
		c, err := compileExpr(rewritten, env)
		if err != nil {
			return nil, err
		}
		if !x.Not {
			return c, nil
		}
		return func(rc *rowCtx) (record.Value, error) {
			v, err := c(rc)
			if err != nil || v.IsNull() {
				return record.Null(), err
			}
			return record.Bool(!v.Truthy()), nil
		}, nil

	case *InExpr:
		sub, err := compileExpr(x.X, env)
		if err != nil {
			return nil, err
		}
		items := make([]compiledExpr, len(x.List))
		for i, it := range x.List {
			c, err := compileExpr(it, env)
			if err != nil {
				return nil, err
			}
			items[i] = c
		}
		not := x.Not
		return func(rc *rowCtx) (record.Value, error) {
			v, err := sub(rc)
			if err != nil {
				return record.Value{}, err
			}
			if v.IsNull() {
				return record.Null(), nil
			}
			sawNull := false
			for _, it := range items {
				iv, err := it(rc)
				if err != nil {
					return record.Value{}, err
				}
				if iv.IsNull() {
					sawNull = true
					continue
				}
				if record.Compare(v, iv) == 0 {
					return record.Bool(!not), nil
				}
			}
			if sawNull {
				return record.Null(), nil
			}
			return record.Bool(not), nil
		}, nil

	case *LikeExpr:
		sub, err := compileExpr(x.X, env)
		if err != nil {
			return nil, err
		}
		pat, err := compileExpr(x.Pattern, env)
		if err != nil {
			return nil, err
		}
		not := x.Not
		return func(rc *rowCtx) (record.Value, error) {
			v, err := sub(rc)
			if err != nil {
				return record.Value{}, err
			}
			pv, err := pat(rc)
			if err != nil {
				return record.Value{}, err
			}
			if v.IsNull() || pv.IsNull() {
				return record.Null(), nil
			}
			m := likeMatch(pv.String(), v.String())
			return record.Bool(m != not), nil
		}, nil

	case *CaseExpr:
		return compileCase(x, env)

	case *FuncCall:
		return compileFuncCall(x, env)
	}
	return nil, fmt.Errorf("sql: cannot compile expression %T", e)
}

func compileBinary(x *BinaryExpr, env *compileEnv) (compiledExpr, error) {
	l, err := compileExpr(x.L, env)
	if err != nil {
		return nil, err
	}
	r, err := compileExpr(x.R, env)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case "AND":
		return func(rc *rowCtx) (record.Value, error) {
			lv, err := l(rc)
			if err != nil {
				return record.Value{}, err
			}
			if !lv.IsNull() && !lv.Truthy() {
				return record.Bool(false), nil
			}
			rv, err := r(rc)
			if err != nil {
				return record.Value{}, err
			}
			if !rv.IsNull() && !rv.Truthy() {
				return record.Bool(false), nil
			}
			if lv.IsNull() || rv.IsNull() {
				return record.Null(), nil
			}
			return record.Bool(true), nil
		}, nil
	case "OR":
		return func(rc *rowCtx) (record.Value, error) {
			lv, err := l(rc)
			if err != nil {
				return record.Value{}, err
			}
			if !lv.IsNull() && lv.Truthy() {
				return record.Bool(true), nil
			}
			rv, err := r(rc)
			if err != nil {
				return record.Value{}, err
			}
			if !rv.IsNull() && rv.Truthy() {
				return record.Bool(true), nil
			}
			if lv.IsNull() || rv.IsNull() {
				return record.Null(), nil
			}
			return record.Bool(false), nil
		}, nil
	case "=", "!=", "<", "<=", ">", ">=":
		op := x.Op
		return func(rc *rowCtx) (record.Value, error) {
			lv, err := l(rc)
			if err != nil {
				return record.Value{}, err
			}
			rv, err := r(rc)
			if err != nil {
				return record.Value{}, err
			}
			if lv.IsNull() || rv.IsNull() {
				return record.Null(), nil
			}
			c := record.Compare(lv, rv)
			var res bool
			switch op {
			case "=":
				res = c == 0
			case "!=":
				res = c != 0
			case "<":
				res = c < 0
			case "<=":
				res = c <= 0
			case ">":
				res = c > 0
			case ">=":
				res = c >= 0
			}
			return record.Bool(res), nil
		}, nil
	case "||":
		return func(rc *rowCtx) (record.Value, error) {
			lv, err := l(rc)
			if err != nil {
				return record.Value{}, err
			}
			rv, err := r(rc)
			if err != nil {
				return record.Value{}, err
			}
			if lv.IsNull() || rv.IsNull() {
				return record.Null(), nil
			}
			return record.Text(lv.String() + rv.String()), nil
		}, nil
	case "+", "-", "*", "/", "%":
		op := x.Op
		return func(rc *rowCtx) (record.Value, error) {
			lv, err := l(rc)
			if err != nil {
				return record.Value{}, err
			}
			rv, err := r(rc)
			if err != nil {
				return record.Value{}, err
			}
			return arith(op, lv, rv)
		}, nil
	}
	return nil, fmt.Errorf("sql: unknown binary operator %q", x.Op)
}

// arith implements SQL arithmetic with SQLite semantics: NULL
// propagates, integer op integer stays integer (except /0 -> NULL),
// anything else computes in float.
func arith(op string, a, b record.Value) (record.Value, error) {
	if a.IsNull() || b.IsNull() {
		return record.Null(), nil
	}
	if a.Type() == record.TypeInt && b.Type() == record.TypeInt {
		x, y := a.Int(), b.Int()
		switch op {
		case "+":
			return record.Int(x + y), nil
		case "-":
			return record.Int(x - y), nil
		case "*":
			return record.Int(x * y), nil
		case "/":
			if y == 0 {
				return record.Null(), nil
			}
			return record.Int(x / y), nil
		case "%":
			if y == 0 {
				return record.Null(), nil
			}
			return record.Int(x % y), nil
		}
	}
	x, y := a.AsFloat(), b.AsFloat()
	switch op {
	case "+":
		return record.Float(x + y), nil
	case "-":
		return record.Float(x - y), nil
	case "*":
		return record.Float(x * y), nil
	case "/":
		if y == 0 {
			return record.Null(), nil
		}
		return record.Float(x / y), nil
	case "%":
		if y == 0 {
			return record.Null(), nil
		}
		return record.Float(float64(int64(x) % int64(y))), nil
	}
	return record.Value{}, fmt.Errorf("sql: unknown arithmetic operator %q", op)
}

func compileCase(x *CaseExpr, env *compileEnv) (compiledExpr, error) {
	var operand compiledExpr
	if x.Operand != nil {
		c, err := compileExpr(x.Operand, env)
		if err != nil {
			return nil, err
		}
		operand = c
	}
	type when struct{ cond, result compiledExpr }
	whens := make([]when, len(x.Whens))
	for i, w := range x.Whens {
		c, err := compileExpr(w.Cond, env)
		if err != nil {
			return nil, err
		}
		r, err := compileExpr(w.Result, env)
		if err != nil {
			return nil, err
		}
		whens[i] = when{cond: c, result: r}
	}
	var elseC compiledExpr
	if x.Else != nil {
		c, err := compileExpr(x.Else, env)
		if err != nil {
			return nil, err
		}
		elseC = c
	}
	return func(rc *rowCtx) (record.Value, error) {
		var opv record.Value
		if operand != nil {
			v, err := operand(rc)
			if err != nil {
				return record.Value{}, err
			}
			opv = v
		}
		for _, w := range whens {
			cv, err := w.cond(rc)
			if err != nil {
				return record.Value{}, err
			}
			matched := false
			if operand != nil {
				matched = !cv.IsNull() && !opv.IsNull() && record.Compare(opv, cv) == 0
			} else {
				matched = !cv.IsNull() && cv.Truthy()
			}
			if matched {
				return w.result(rc)
			}
		}
		if elseC != nil {
			return elseC(rc)
		}
		return record.Null(), nil
	}, nil
}

func compileFuncCall(x *FuncCall, env *compileEnv) (compiledExpr, error) {
	// Pre-computed aggregate slot (inside an aggregating SELECT).
	if env.aggIdx != nil {
		if pos, ok := env.aggIdx[x]; ok {
			return func(rc *rowCtx) (record.Value, error) { return rc.row[pos], nil }, nil
		}
	}
	if isAggregateCall(x) {
		return nil, fmt.Errorf("sql: misuse of aggregate function %s()", x.Name)
	}
	def := env.ec.conn.db.function(x.Name)
	if def == nil {
		return nil, fmt.Errorf("sql: no such function: %s", x.Name)
	}
	if x.Star {
		return nil, fmt.Errorf("sql: %s(*) is only valid for count", x.Name)
	}
	if len(x.Args) < def.MinArgs || (def.MaxArgs >= 0 && len(x.Args) > def.MaxArgs) {
		return nil, fmt.Errorf("sql: wrong number of arguments to function %s()", x.Name)
	}
	args := make([]compiledExpr, len(x.Args))
	for i, a := range x.Args {
		c, err := compileExpr(a, env)
		if err != nil {
			return nil, err
		}
		args[i] = c
	}
	callSite := x
	return func(rc *rowCtx) (record.Value, error) {
		vals := make([]record.Value, len(args))
		for i, a := range args {
			v, err := a(rc)
			if err != nil {
				return record.Value{}, err
			}
			vals[i] = v
		}
		fc := &FuncContext{ec: rc.ec, callSite: callSite}
		return def.Fn(fc, vals)
	}, nil
}

// likeMatch implements SQL LIKE with % and _ wildcards,
// case-insensitively for ASCII (SQLite's default).
func likeMatch(pattern, s string) bool {
	return likeRec(strings.ToLower(pattern), strings.ToLower(s))
}

func likeRec(p, s string) bool {
	for {
		if p == "" {
			return s == ""
		}
		switch p[0] {
		case '%':
			for p != "" && p[0] == '%' {
				p = p[1:]
			}
			if p == "" {
				return true
			}
			for i := 0; i <= len(s); i++ {
				if likeRec(p, s[i:]) {
					return true
				}
			}
			return false
		case '_':
			if s == "" {
				return false
			}
			p, s = p[1:], s[1:]
		default:
			if s == "" || p[0] != s[0] {
				return false
			}
			p, s = p[1:], s[1:]
		}
	}
}

func parseInt(s string) (int64, error)     { return strconv.ParseInt(s, 10, 64) }
func parseFloat(s string) (float64, error) { return strconv.ParseFloat(s, 64) }

// exprColumnName derives the display name of a result column, following
// SQLite: an explicit alias wins, a plain column reference uses the
// column name, anything else uses the expression's source-ish text.
func exprColumnName(col ResultCol) string {
	if col.Alias != "" {
		return col.Alias
	}
	if ref, ok := col.Expr.(*ColumnRef); ok {
		return ref.Name
	}
	return exprText(col.Expr)
}

// exprText renders an expression roughly back to SQL for display names
// and error messages.
func exprText(e Expr) string {
	switch x := e.(type) {
	case *Literal:
		return x.Val.SQL()
	case *ColumnRef:
		if x.Table != "" {
			return x.Table + "." + x.Name
		}
		return x.Name
	case *ParamRef:
		return "?"
	case *UnaryExpr:
		return x.Op + " " + exprText(x.X)
	case *BinaryExpr:
		return exprText(x.L) + " " + x.Op + " " + exprText(x.R)
	case *FuncCall:
		var args []string
		if x.Star {
			args = []string{"*"}
		}
		for _, a := range x.Args {
			args = append(args, exprText(a))
		}
		inner := strings.Join(args, ", ")
		if x.Distinct {
			inner = "DISTINCT " + inner
		}
		return x.Name + "(" + inner + ")"
	case *IsNullExpr:
		if x.Not {
			return exprText(x.X) + " IS NOT NULL"
		}
		return exprText(x.X) + " IS NULL"
	default:
		return fmt.Sprintf("<expr %T>", e)
	}
}
