package sql

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"rql/internal/storage"
)

// TestExplicitTxConflict pins the SQL surface of first-committer-wins:
// two explicit transactions staged against the same baseline insert
// into the same table (hence the same leaf page); the first COMMIT
// wins, the second surfaces ErrWriteConflict and is rolled back.
func TestExplicitTxConflict(t *testing.T) {
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	c1, c2 := db.Conn(), db.Conn()
	mustExec(t, c1, `CREATE TABLE t (a INTEGER)`)

	if err := c1.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := c2.Begin(); err != nil {
		t.Fatal(err, "BEGIN must not block on another open transaction")
	}
	mustExec(t, c1, `INSERT INTO t VALUES (1)`)
	mustExec(t, c2, `INSERT INTO t VALUES (2)`)
	if err := c1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := c2.Commit(); !errors.Is(err, storage.ErrWriteConflict) {
		t.Fatalf("second COMMIT = %v, want ErrWriteConflict", err)
	}
	if got := q(t, c1, `SELECT a FROM t`); len(got) != 1 || got[0] != "1" {
		t.Fatalf("table = %v, want only the winner's row", got)
	}
	if c2.InTx() {
		t.Error("losing transaction should be closed after the conflict")
	}
	if st := db.MainStore().Stats(); st.Conflicts != 1 {
		t.Errorf("Conflicts = %d, want 1", st.Conflicts)
	}

	// The loser retries on a fresh snapshot and succeeds.
	if err := c2.Begin(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, c2, `INSERT INTO t VALUES (2)`)
	if err := c2.Commit(); err != nil {
		t.Fatalf("retried COMMIT: %v", err)
	}
	if got := q(t, c1, `SELECT a FROM t ORDER BY a`); fmt.Sprint(got) != "[1 2]" {
		t.Fatalf("table after retry = %v", got)
	}
}

// TestAutocommitConflictRetry hammers one table with concurrent
// autocommit INSERTs from many connections: the engine's transparent
// conflict retry must land every row exactly once.
func TestAutocommitConflictRetry(t *testing.T) {
	const writers, each = 8, 25
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	setup := db.Conn()
	mustExec(t, setup, `CREATE TABLE t (w INTEGER, i INTEGER)`)

	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := db.Conn()
			for i := 0; i < each; i++ {
				if err := c.Exec(fmt.Sprintf(`INSERT INTO t VALUES (%d, %d)`, w, i), nil); err != nil {
					errs <- fmt.Errorf("writer %d op %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	got := q(t, setup, `SELECT COUNT(*), COUNT(DISTINCT w) FROM t`)
	if len(got) != 1 || got[0] != fmt.Sprintf("%d|%d", writers*each, writers) {
		t.Fatalf("after concurrent autocommit inserts: %v, want [%d|%d]",
			got, writers*each, writers)
	}
	st := db.MainStore().Stats()
	if st.Commits < writers*each {
		t.Errorf("Commits = %d, want >= %d", st.Commits, writers*each)
	}
	t.Logf("groups=%d commits=%d conflicts=%d", st.Groups, st.Commits, st.Conflicts)
}

// TestConnContextCancelsWriterWait: a connection whose ambient context
// is cancelled must not block in BEGIN (and a side-store write must
// not park forever behind the side store's legacy writer lock).
func TestConnContextCancelsWriterWait(t *testing.T) {
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	c := db.Conn()
	mustExec(t, c, `CREATE TEMP TABLE s (a INTEGER)`)

	// Hold the side store's legacy writer lock directly.
	holder, err := db.side.Begin()
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	c2 := db.Conn()
	c2.SetContext(ctx)
	got := make(chan error, 1)
	go func() { got <- c2.Exec(`INSERT INTO s VALUES (1)`, nil) }()
	cancel()
	if err := <-got; !errors.Is(err, context.Canceled) {
		t.Fatalf("side write with cancelled ctx = %v, want context.Canceled", err)
	}
	holder.Rollback()

	// An already-cancelled context also fails main-store BEGIN fast.
	if err := c2.Begin(); !errors.Is(err, context.Canceled) {
		t.Fatalf("BEGIN with cancelled ctx = %v, want context.Canceled", err)
	}
	// Clearing the context restores normal operation.
	c2.SetContext(nil)
	mustExec(t, c2, `INSERT INTO s VALUES (2)`)
}
