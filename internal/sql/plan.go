package sql

import (
	"fmt"
	"strings"

	"rql/internal/btree"
	"rql/internal/record"
	"rql/internal/storage"
)

// planSelect compiles a SELECT into an iterator tree plus the output
// column descriptions.
func planSelect(s *SelectStmt, ec *execCtx) (iterator, []colInfo, error) {
	// ---- FROM sources -----------------------------------------------------
	type fromItem struct {
		cols     []colInfo
		table    *Table
		schema   *schema
		pager    storage.Pager
		subRows  [][]record.Value
		joinCond Expr
		leftJoin bool
	}
	var items []fromItem
	for _, ref := range s.From {
		var item fromItem
		item.joinCond = ref.JoinCond
		item.leftJoin = ref.LeftJoin
		if ref.Subquery != nil {
			subIt, subCols, err := planSelect(ref.Subquery, ec)
			if err != nil {
				return nil, nil, err
			}
			rows, err := drain(subIt)
			if err != nil {
				return nil, nil, err
			}
			alias := strings.ToLower(ref.Alias)
			cols := make([]colInfo, len(subCols))
			for i, c := range subCols {
				cols[i] = colInfo{table: alias, name: strings.ToLower(c.name)}
			}
			item.cols = cols
			item.subRows = rows
		} else {
			t, sch, pager, err := ec.resolveTable(ref.Name)
			if err != nil {
				return nil, nil, err
			}
			alias := strings.ToLower(ref.Alias)
			if alias == "" {
				alias = strings.ToLower(ref.Name)
			}
			cols := make([]colInfo, 0, len(t.Cols)+1)
			for _, c := range t.Cols {
				cols = append(cols, colInfo{table: alias, name: strings.ToLower(c.Name)})
			}
			cols = append(cols, colInfo{table: alias, name: "#rowid"})
			item.cols = cols
			item.table = t
			item.schema = sch
			item.pager = pager
		}
		items = append(items, item)
	}

	// ---- WHERE conjuncts ---------------------------------------------------
	var conjuncts []Expr
	conjuncts = append(conjuncts, splitAnd(s.Where)...)
	for i := range items {
		if !items[i].leftJoin && items[i].joinCond != nil {
			// INNER JOIN ... ON behaves like WHERE.
			conjuncts = append(conjuncts, splitAnd(items[i].joinCond)...)
			items[i].joinCond = nil
		}
	}
	placed := make([]bool, len(conjuncts))

	resolves := func(e Expr, cols []colInfo) bool {
		_, err := compileExpr(e, &compileEnv{cols: cols, ec: ec})
		return err == nil
	}

	// Join-order heuristic (inner joins only): drive the join from
	// tables that carry their own filter predicates, so selective
	// tables come first and unfiltered big tables become inner sides —
	// where a native or automatic index serves the probes. This is the
	// reordering that makes SQLite build its automatic covering index
	// on lineitem for the paper's Qq_cpu (Figure 9).
	hasLeft := false
	for _, item := range items {
		if item.leftJoin {
			hasLeft = true
		}
	}
	if len(items) > 1 && !hasLeft {
		hasLocal := func(item fromItem) bool {
			for _, cond := range conjuncts {
				if resolves(cond, item.cols) {
					return true
				}
			}
			return false
		}
		var filtered, rest []fromItem
		for _, item := range items {
			if hasLocal(item) {
				filtered = append(filtered, item)
			} else {
				rest = append(rest, item)
			}
		}
		items = append(filtered, rest...)
	}

	// buildBase constructs the access path for one base table or
	// materialized subquery, applying the given single-item conjuncts.
	buildBase := func(item fromItem, conds []Expr) (iterator, error) {
		var it iterator
		if item.table == nil {
			it = &sliceIter{rows: item.subRows}
		} else {
			it = pickAccessPath(item.table, item.schema, item.pager, conds, ec)
		}
		for _, cond := range conds {
			c, err := compileExpr(cond, &compileEnv{cols: item.cols, ec: ec})
			if err != nil {
				return nil, err
			}
			it = &filterIter{src: it, cond: c, ec: ec}
		}
		return it, nil
	}

	var cur iterator
	var scope []colInfo
	if len(items) == 0 {
		cur = &oneRowIter{}
	}
	for idx, item := range items {
		// Conjuncts local to this item.
		var local []Expr
		for ci, cond := range conjuncts {
			if !placed[ci] && !item.leftJoin && resolves(cond, item.cols) {
				local = append(local, cond)
				placed[ci] = true
			}
		}
		if idx == 0 {
			it, err := buildBase(item, local)
			if err != nil {
				return nil, nil, err
			}
			cur = it
			scope = item.cols
			continue
		}

		combined := append(append([]colInfo{}, scope...), item.cols...)

		if item.leftJoin {
			// LEFT JOIN: inner materialized, ON condition only.
			innerIt, err := buildBase(item, nil)
			if err != nil {
				return nil, nil, err
			}
			innerRows, err := drain(innerIt)
			if err != nil {
				return nil, nil, err
			}
			cond, err := compileExpr(item.joinCond, &compileEnv{cols: combined, ec: ec})
			if err != nil {
				return nil, nil, err
			}
			cur = &nlJoinIter{outer: cur, inner: innerRows, innerCols: len(item.cols), cond: cond, leftOuter: true, ec: ec}
			scope = combined
			// WHERE conjuncts over the combined scope apply after.
			cur, err = applyAvailable(cur, combined, conjuncts, placed, ec)
			if err != nil {
				return nil, nil, err
			}
			continue
		}

		// Find an equi-join conjunct: outerExpr = innerExpr.
		var outerKeyE, innerKeyE Expr
		for ci, cond := range conjuncts {
			if placed[ci] {
				continue
			}
			be, ok := cond.(*BinaryExpr)
			if !ok || be.Op != "=" {
				continue
			}
			switch {
			case resolves(be.L, scope) && resolves(be.R, item.cols):
				outerKeyE, innerKeyE = be.L, be.R
			case resolves(be.R, scope) && resolves(be.L, item.cols):
				outerKeyE, innerKeyE = be.R, be.L
			default:
				continue
			}
			placed[ci] = true
			break
		}

		switch {
		case outerKeyE == nil:
			// Cross join: materialize the inner side.
			innerIt, err := buildBase(item, local)
			if err != nil {
				return nil, nil, err
			}
			innerRows, err := drain(innerIt)
			if err != nil {
				return nil, nil, err
			}
			cur = &nlJoinIter{outer: cur, inner: innerRows, innerCols: len(item.cols), ec: ec}
		default:
			outerKey, err := compileExpr(outerKeyE, &compileEnv{cols: scope, ec: ec})
			if err != nil {
				return nil, nil, err
			}
			// Native index on the inner join column?
			if ix := nativeJoinIndex(item.table, item.schema, innerKeyE); ix != nil && len(local) == 0 {
				cur = &indexJoinIter{
					outer:    cur,
					pager:    item.pager,
					table:    item.table,
					index:    ix,
					outerKey: outerKey,
					ec:       ec,
					tbl:      btree.Open(item.pager, item.table.Root),
				}
			} else {
				// No usable native index: build the transient "automatic
				// covering index" over the inner side (timed as index
				// creation, per Figure 9).
				innerKey, err := compileExpr(innerKeyE, &compileEnv{cols: item.cols, ec: ec})
				if err != nil {
					return nil, nil, err
				}
				itemCopy := item
				localCopy := local
				buildRows := func() ([][]record.Value, error) {
					innerIt, err := buildBase(itemCopy, localCopy)
					if err != nil {
						return nil, err
					}
					return drain(innerIt)
				}
				cur = &autoIndexJoin{
					outer:     cur,
					innerCols: len(item.cols),
					outerKey:  outerKey,
					ec:        ec,
					buildRows: buildRows,
					innerKey:  innerKey,
				}
			}
		}
		scope = combined
		var err error
		cur, err = applyAvailable(cur, combined, conjuncts, placed, ec)
		if err != nil {
			return nil, nil, err
		}
	}

	// Any remaining conjuncts must resolve over the full scope.
	for ci, cond := range conjuncts {
		if placed[ci] {
			continue
		}
		c, err := compileExpr(cond, &compileEnv{cols: scope, ec: ec})
		if err != nil {
			return nil, nil, err
		}
		cur = &filterIter{src: cur, cond: c, ec: ec}
	}

	// ---- Aggregation --------------------------------------------------------
	aliases := make(map[string]Expr)
	for _, col := range s.Cols {
		if col.Alias != "" {
			aliases[strings.ToLower(col.Alias)] = col.Expr
		}
	}

	var aggCalls []*FuncCall
	for _, col := range s.Cols {
		if col.Expr != nil {
			if err := collectAggregates(col.Expr, &aggCalls); err != nil {
				return nil, nil, err
			}
		}
	}
	if err := collectAggregates(s.Having, &aggCalls); err != nil {
		return nil, nil, err
	}
	for _, ot := range s.OrderBy {
		// ORDER BY may reference aliases whose expressions aggregate.
		e := ot.Expr
		if ref, ok := e.(*ColumnRef); ok && ref.Table == "" {
			if ae, ok := aliases[strings.ToLower(ref.Name)]; ok {
				e = ae
			}
		}
		if err := collectAggregates(e, &aggCalls); err != nil {
			return nil, nil, err
		}
	}
	aggCalls = dedupCalls(aggCalls)

	env := &compileEnv{cols: scope, aliases: aliases, ec: ec}
	if len(aggCalls) > 0 || len(s.GroupBy) > 0 {
		srcEnv := &compileEnv{cols: scope, aliases: aliases, ec: ec}
		var groupBy []compiledExpr
		for _, g := range s.GroupBy {
			ge := g
			// GROUP BY ordinal and alias support.
			if lit, ok := ge.(*Literal); ok && lit.Val.Type() == record.TypeInt {
				n := int(lit.Val.Int())
				if n < 1 || n > len(s.Cols) || s.Cols[n-1].Expr == nil {
					return nil, nil, fmt.Errorf("sql: GROUP BY ordinal %d out of range", n)
				}
				ge = s.Cols[n-1].Expr
			}
			c, err := compileExpr(ge, srcEnv)
			if err != nil {
				return nil, nil, err
			}
			groupBy = append(groupBy, c)
		}
		var specs []aggSpec
		aggIdx := make(map[*FuncCall]int)
		for _, call := range aggCalls {
			spec := aggSpec{call: call, isMinMax: (call.Name == "min" || call.Name == "max") && !call.Distinct}
			if call.Star {
				if call.Name != "count" {
					return nil, nil, fmt.Errorf("sql: %s(*) is not valid", call.Name)
				}
			} else {
				if len(call.Args) != 1 {
					return nil, nil, fmt.Errorf("sql: aggregate %s() takes one argument", call.Name)
				}
				c, err := compileExpr(call.Args[0], srcEnv)
				if err != nil {
					return nil, nil, err
				}
				spec.arg = c
			}
			aggIdx[call] = len(scope) + len(specs)
			specs = append(specs, spec)
		}
		cur = &aggregateIter{
			src:            cur,
			groupBy:        groupBy,
			specs:          specs,
			inputCols:      len(scope),
			ec:             ec,
			emitEmptyGroup: len(s.GroupBy) == 0,
		}
		extended := append(append([]colInfo{}, scope...), make([]colInfo, len(specs))...)
		for i := range specs {
			extended[len(scope)+i] = colInfo{name: fmt.Sprintf("#agg%d", i)}
		}
		env = &compileEnv{cols: extended, aliases: aliases, aggIdx: aggIdx, ec: ec}
	}

	// ---- HAVING --------------------------------------------------------------
	if s.Having != nil {
		c, err := compileExpr(s.Having, env)
		if err != nil {
			return nil, nil, err
		}
		cur = &filterIter{src: cur, cond: c, ec: ec}
	}

	// ---- Projection ------------------------------------------------------------
	var projExprs []compiledExpr
	var outCols []colInfo
	for _, col := range s.Cols {
		if col.Star {
			starTable := strings.ToLower(col.StarTable)
			matched := false
			for pos, ci := range scope {
				if strings.HasPrefix(ci.name, "#") {
					continue
				}
				if starTable != "" && ci.table != starTable {
					continue
				}
				matched = true
				p := pos
				projExprs = append(projExprs, func(rc *rowCtx) (record.Value, error) { return rc.row[p], nil })
				outCols = append(outCols, colInfo{table: ci.table, name: ci.name})
			}
			if !matched {
				return nil, nil, fmt.Errorf("sql: no tables match %s.*", col.StarTable)
			}
			continue
		}
		c, err := compileExpr(col.Expr, env)
		if err != nil {
			return nil, nil, err
		}
		projExprs = append(projExprs, c)
		outCols = append(outCols, colInfo{name: exprColumnName(col)})
	}

	pairs := &projectPairIter{src: cur, exprs: projExprs, ec: ec}
	var pairSrc interface {
		Next() (*pairRow, error)
		Close() error
	}
	if s.Distinct {
		pairSrc = &distinctPairIter{src: pairs}
	} else {
		pairSrc = &passPairIter{src: pairs}
	}

	// ---- ORDER BY / LIMIT -------------------------------------------------------
	fin := &finalIter{pairs: pairSrc, limit: -1, ec: ec}
	for _, ot := range s.OrderBy {
		ord := -1
		var ce compiledExpr
		if lit, ok := ot.Expr.(*Literal); ok && lit.Val.Type() == record.TypeInt {
			n := int(lit.Val.Int())
			if n < 1 || n > len(outCols) {
				return nil, nil, fmt.Errorf("sql: ORDER BY ordinal %d out of range", n)
			}
			ord = n - 1
		} else {
			c, err := compileExpr(ot.Expr, env)
			if err != nil {
				return nil, nil, err
			}
			ce = c
		}
		fin.orderBy = append(fin.orderBy, ce)
		fin.ordinal = append(fin.ordinal, ord)
		fin.desc = append(fin.desc, ot.Desc)
	}
	if s.Limit != nil {
		v, err := evalConst(s.Limit, ec)
		if err != nil {
			return nil, nil, err
		}
		fin.limit = v.AsInt()
	}
	if s.Offset != nil {
		v, err := evalConst(s.Offset, ec)
		if err != nil {
			return nil, nil, err
		}
		fin.offset = v.AsInt()
		if fin.offset < 0 {
			fin.offset = 0
		}
	}
	return fin, outCols, nil
}

// applyAvailable filters the stream with every unplaced conjunct that
// resolves over the given scope.
func applyAvailable(cur iterator, scope []colInfo, conjuncts []Expr, placed []bool, ec *execCtx) (iterator, error) {
	for ci, cond := range conjuncts {
		if placed[ci] {
			continue
		}
		c, err := compileExpr(cond, &compileEnv{cols: scope, ec: ec})
		if err != nil {
			continue // not available at this scope yet
		}
		placed[ci] = true
		cur = &filterIter{src: cur, cond: c, ec: ec}
	}
	return cur, nil
}

// splitAnd flattens a conjunction into its conjuncts.
func splitAnd(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if be, ok := e.(*BinaryExpr); ok && be.Op == "AND" {
		return append(splitAnd(be.L), splitAnd(be.R)...)
	}
	return []Expr{e}
}

func dedupCalls(calls []*FuncCall) []*FuncCall {
	seen := make(map[*FuncCall]bool)
	var out []*FuncCall
	for _, c := range calls {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}

func evalConst(e Expr, ec *execCtx) (record.Value, error) {
	c, err := compileExpr(e, &compileEnv{ec: ec})
	if err != nil {
		return record.Value{}, err
	}
	return c(&rowCtx{ec: ec})
}

// nativeJoinIndex returns an index usable for an equi-join probe: the
// inner key must be a bare column that is the first column of an index
// on the inner table.
func nativeJoinIndex(t *Table, sch *schema, innerKey Expr) *Index {
	if t == nil {
		return nil
	}
	ref, ok := innerKey.(*ColumnRef)
	if !ok {
		return nil
	}
	for _, ix := range sch.tableIndexes(t.Name) {
		if strings.EqualFold(ix.Cols[0], ref.Name) {
			return ix
		}
	}
	return nil
}

// pickAccessPath chooses between a full scan and an index scan for a
// base table given its local conjuncts.
func pickAccessPath(t *Table, sch *schema, pager storage.Pager, conds []Expr, ec *execCtx) iterator {
	// Gather constant equality and range conditions per column.
	eq := make(map[string]Expr)
	type rng struct {
		op string
		e  Expr
	}
	ranges := make(map[string][]rng)
	constant := func(e Expr) bool {
		_, err := compileExpr(e, &compileEnv{ec: ec})
		return err == nil
	}
	for _, cond := range conds {
		be, ok := cond.(*BinaryExpr)
		if !ok {
			continue
		}
		col, val := "", Expr(nil)
		op := be.Op
		if ref, ok := be.L.(*ColumnRef); ok && constant(be.R) {
			col, val = strings.ToLower(ref.Name), be.R
		} else if ref, ok := be.R.(*ColumnRef); ok && constant(be.L) {
			col, val = strings.ToLower(ref.Name), be.L
			// Mirror the operator: 5 < c  ==  c > 5.
			switch op {
			case "<":
				op = ">"
			case "<=":
				op = ">="
			case ">":
				op = "<"
			case ">=":
				op = "<="
			}
		} else {
			continue
		}
		switch op {
		case "=":
			eq[col] = val
		case "<", "<=", ">", ">=":
			ranges[col] = append(ranges[col], rng{op: op, e: val})
		}
	}

	var best *Index
	bestEqLen := 0
	var bestRange bool
	for _, ix := range sch.tableIndexes(t.Name) {
		n := 0
		for _, c := range ix.Cols {
			if _, ok := eq[strings.ToLower(c)]; ok {
				n++
			} else {
				break
			}
		}
		hasRange := false
		if n == 0 {
			_, hasRange = ranges[strings.ToLower(ix.Cols[0])]
		}
		if n > bestEqLen || (best == nil && hasRange) {
			best, bestEqLen, bestRange = ix, n, hasRange && n == 0
		}
	}
	if best == nil || (bestEqLen == 0 && !bestRange) {
		return newTableScan(pager, t)
	}

	it := &indexScanIter{
		pager:  pager,
		table:  t,
		idxCur: btree.Open(pager, best.Root).Cursor(),
		tbl:    btree.Open(pager, t.Root),
	}
	if bestEqLen > 0 {
		vals := make([]record.Value, 0, bestEqLen)
		for _, c := range best.Cols[:bestEqLen] {
			v, err := evalConst(eq[strings.ToLower(c)], ec)
			if err != nil {
				return newTableScan(pager, t)
			}
			vals = append(vals, v)
		}
		prefix := record.EncodeKey(nil, vals)
		it.lo = prefix
		it.eqPrefix = prefix
		return it
	}
	// Range on the first index column: seek to the lower bound (if any)
	// and stop past the upper bound. Residual filters enforce
	// strictness, so the bounds only need to be conservative.
	col := strings.ToLower(best.Cols[0])
	for _, r := range ranges[col] {
		v, err := evalConst(r.e, ec)
		if err != nil {
			return newTableScan(pager, t)
		}
		switch r.op {
		case ">", ">=":
			it.lo = record.EncodeKey(nil, []record.Value{v})
		case "<", "<=":
			bound := v
			it.checkHi = func(x record.Value) bool { return record.Compare(x, bound) <= 0 }
		}
	}
	return it
}
