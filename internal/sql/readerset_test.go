package sql

import (
	"fmt"
	"rql/internal/record"
	"strings"
	"testing"
)

// qSet collects the rows of one SELECT executed via ExecAsOfSet.
func qSet(t *testing.T, c *Conn, sqlText string, set *ReaderSet, asOf uint64) []string {
	t.Helper()
	var out []string
	err := c.ExecAsOfSet(sqlText, set, asOf, func(cols []string, row []record.Value) error {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = v.String()
		}
		out = append(out, strings.Join(parts, "|"))
		return nil
	})
	if err != nil {
		t.Fatalf("ExecAsOfSet(%q, asOf=%d): %v", sqlText, asOf, err)
	}
	return out
}

// qAsOf collects the rows of one SELECT executed via the per-iteration
// ExecAsOf path (fresh SPT per call) — the reference for qSet.
func qAsOf(t *testing.T, c *Conn, sqlText string, asOf uint64) []string {
	t.Helper()
	var out []string
	err := c.ExecAsOf(sqlText, asOf, func(cols []string, row []record.Value) error {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = v.String()
		}
		out = append(out, strings.Join(parts, "|"))
		return nil
	})
	if err != nil {
		t.Fatalf("ExecAsOf(%q, asOf=%d): %v", sqlText, asOf, err)
	}
	return out
}

// snapHistory builds a table whose contents differ at every snapshot:
// snapshot i sees rows 1..i with val = i*row. Returns the snapshot ids.
func snapHistory(t *testing.T, c *Conn, snaps int) []uint64 {
	t.Helper()
	mustExec(t, c, `CREATE TABLE h (id INTEGER PRIMARY KEY, val INTEGER)`)
	ids := make([]uint64, 0, snaps)
	for i := 1; i <= snaps; i++ {
		mustExec(t, c, fmt.Sprintf(`BEGIN;
			INSERT INTO h VALUES (%d, 0);
			UPDATE h SET val = id * %d;
			COMMIT WITH SNAPSHOT`, i, i))
		ids = append(ids, c.LastSnapshot())
	}
	return ids
}

func TestExecAsOfSetMatchesExecAsOf(t *testing.T) {
	c := testConn(t)
	snaps := snapHistory(t, c, 8)
	// Keep mutating after the last snapshot so set readers must not
	// leak current state.
	mustExec(t, c, `UPDATE h SET val = -1`)

	// Open a set over a strict subset; one member repeated.
	members := []uint64{snaps[0], snaps[3], snaps[6], snaps[3]}
	set, err := c.OpenSnapshotSet(members)
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()

	if got := set.Snapshots(); len(got) != 3 {
		t.Fatalf("Snapshots() = %v, want 3 distinct members", got)
	}
	if !set.Contains(snaps[3]) || set.Contains(snaps[1]) {
		t.Error("Contains misreports membership")
	}
	if set.Scanned() == 0 {
		t.Error("batch sweep reported zero Maplog entries scanned")
	}

	const query = `SELECT id, val FROM h ORDER BY id`
	// Every snapshot — member or not — must read identically through
	// the set API (non-members fall back to a standalone open).
	for _, s := range snaps {
		want := qAsOf(t, c, query, s)
		got := qSet(t, c, query, set, s)
		expectRows(t, got, want...)
	}
	// And a second pass over the members must be stable (cached SPTs).
	for _, s := range []uint64{snaps[0], snaps[3], snaps[6]} {
		want := qAsOf(t, c, query, s)
		expectRows(t, qSet(t, c, query, set, s), want...)
	}
}

func TestExecAsOfSetRejectsWrites(t *testing.T) {
	c := testConn(t)
	snaps := snapHistory(t, c, 2)
	set, err := c.OpenSnapshotSet(snaps)
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	err = c.ExecAsOfSet(`INSERT INTO h VALUES (99, 99)`, set, snaps[0], nil)
	if err == nil {
		t.Fatal("write under a snapshot binding must fail")
	}
}

func TestReaderSetPrefetchServesFromCache(t *testing.T) {
	c := testConn(t)
	// Enough rows to span several pages, then a full-table update so the
	// snapshot's pre-states are all archived in the Pagelog.
	mustExec(t, c, `CREATE TABLE big (id INTEGER PRIMARY KEY, pad TEXT)`)
	for i := 0; i < 200; i++ {
		mustExec(t, c, fmt.Sprintf(`INSERT INTO big VALUES (%d, '%s')`, i, strings.Repeat("x", 100)))
	}
	mustExec(t, c, `BEGIN; COMMIT WITH SNAPSHOT`)
	snap := c.LastSnapshot()
	mustExec(t, c, `UPDATE big SET pad = 'y'`)

	c.db.rsys.ResetCache()
	set, err := c.OpenSnapshotSet([]uint64{snap})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	set.SetPrefetch(true)

	got := qSet(t, c, `SELECT COUNT(*) FROM big`, set, snap)
	expectRows(t, got, "200")
	st := c.LastStats()
	if st.ClusteredReads == 0 {
		t.Errorf("prefetch issued no clustered reads: %+v", st)
	}
	if st.PagelogReads == 0 {
		t.Errorf("no archived pages were loaded: %+v", st)
	}
	// The prefetch warmed every SPT page, so the scan's logical reads
	// are satisfied early from the warmed cache (lazy billing: the first
	// touch of a warmed page counts as a PagelogRead + PrefetchHit).
	if st.PrefetchHits == 0 {
		t.Errorf("scan after prefetch had no prefetch hits: %+v", st)
	}
	if st.PrefetchHits != st.PagelogReads {
		t.Errorf("every logical read should be a prefetch hit: %+v", st)
	}
	if st.ClusteredPages < st.PrefetchHits {
		t.Errorf("clustered pages should cover the prefetch hits: %+v", st)
	}
}

func TestParseCacheReuseAndEviction(t *testing.T) {
	c := testConn(t)
	mustExec(t, c, `CREATE TABLE t (a INTEGER)`)

	const query = `SELECT a FROM t`
	s1, err := c.parseCached(query)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := c.parseCached(query)
	if err != nil {
		t.Fatal(err)
	}
	if &s1[0] != &s2[0] {
		t.Error("repeated parse of identical text did not reuse the cached AST")
	}

	// Overflow the cache: the oldest entry is evicted, the cap holds.
	for i := 0; i < stmtCacheCap+10; i++ {
		if _, err := c.parseCached(fmt.Sprintf(`SELECT a FROM t WHERE a = %d`, i)); err != nil {
			t.Fatal(err)
		}
	}
	if len(c.stmtCache) > stmtCacheCap {
		t.Errorf("parse cache grew to %d entries, cap is %d", len(c.stmtCache), stmtCacheCap)
	}
	if _, ok := c.stmtCache[query]; ok {
		t.Error("oldest cache entry survived eviction")
	}
	// Parse errors are not cached.
	if _, err := c.parseCached(`SELEC nope`); err == nil {
		t.Fatal("invalid SQL must fail")
	}
	if _, ok := c.stmtCache[`SELEC nope`]; ok {
		t.Error("a parse error was cached")
	}
}

func TestColumnsSetMatchesColumns(t *testing.T) {
	c := testConn(t)
	snaps := snapHistory(t, c, 2)
	set, err := c.OpenSnapshotSet(snaps)
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	want, err := c.Columns(`SELECT id, val FROM h`, snaps[0])
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.ColumnsSet(`SELECT id, val FROM h`, set, snaps[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("ColumnsSet = %v, want %v", got, want)
	}
}
