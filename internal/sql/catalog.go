package sql

import (
	"errors"
	"fmt"
	"strings"

	"rql/internal/btree"
	"rql/internal/record"
	"rql/internal/storage"
)

// The catalog is itself a B+tree rooted at a fixed page, so schema
// travels with snapshots: an AS OF query sees the tables and indexes
// exactly as they existed when the snapshot was declared (the paper's
// snapshots include "tables, indexes, system catalogs").
const catalogRoot storage.PageID = 1

// Errors returned by catalog operations.
var (
	ErrNoTable     = errors.New("sql: no such table")
	ErrNoIndex     = errors.New("sql: no such index")
	ErrExists      = errors.New("sql: object already exists")
	ErrNoColumn    = errors.New("sql: no such column")
	ErrNotNull     = errors.New("sql: NOT NULL constraint failed")
	ErrUniqueIndex = errors.New("sql: UNIQUE constraint failed")
)

// Column describes one table column.
type Column struct {
	Name    string
	Type    string // declared type, upper-cased ("" if none)
	NotNull bool
	// RowidAlias marks an INTEGER PRIMARY KEY column, which aliases the
	// table's rowid like in SQLite.
	RowidAlias bool
}

// Table describes a table: its columns and root page.
type Table struct {
	Name string
	Root storage.PageID
	Cols []Column
	Temp bool // lives in the non-snapshotable side store
}

// ColIndex returns the position of the named column, or -1.
func (t *Table) ColIndex(name string) int {
	for i := range t.Cols {
		if strings.EqualFold(t.Cols[i].Name, name) {
			return i
		}
	}
	return -1
}

// Index describes a secondary index.
type Index struct {
	Name   string
	Table  string
	Root   storage.PageID
	Cols   []string
	Unique bool
	Temp   bool
}

// RetroViewDef is the immutable definition of a materialized retro
// view as stored in the side store's catalog: which mechanism to run
// and its string arguments. Mutable refresh state (cursor, cached
// read-set, accumulators) lives in the rql_view_state side table, not
// the catalog.
type RetroViewDef struct {
	Name      string
	Mechanism string
	Qq        string
	Extra     string
	HasExtra  bool
}

// schema is one store's catalog contents.
type schema struct {
	tables  map[string]*Table // lower-cased name
	indexes map[string]*Index
	views   map[string]*RetroViewDef
}

func newSchema() *schema {
	return &schema{
		tables:  make(map[string]*Table),
		indexes: make(map[string]*Index),
		views:   make(map[string]*RetroViewDef),
	}
}

func (s *schema) table(name string) *Table       { return s.tables[strings.ToLower(name)] }
func (s *schema) index(name string) *Index       { return s.indexes[strings.ToLower(name)] }
func (s *schema) view(name string) *RetroViewDef { return s.views[strings.ToLower(name)] }

// tableIndexes returns the indexes on a table, in name order.
func (s *schema) tableIndexes(table string) []*Index {
	var out []*Index
	for _, ix := range s.indexes {
		if strings.EqualFold(ix.Table, table) {
			out = append(out, ix)
		}
	}
	// Deterministic order for planning and tests.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Name < out[j-1].Name; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// initCatalog formats a fresh store: page 1 becomes the catalog tree.
func initCatalog(p storage.Pager) error {
	root, err := btree.Create(p)
	if err != nil {
		return err
	}
	if root != catalogRoot {
		return fmt.Errorf("sql: catalog root allocated at page %d, want %d", root, catalogRoot)
	}
	return nil
}

// catalogKey builds the catalog btree key for an object.
func catalogKey(kind, name string) []byte {
	return record.EncodeKey(nil, []record.Value{record.Text(kind), record.Text(strings.ToLower(name))})
}

// encodeColumns serializes column definitions into one text field.
// Format: name|type|flags per column, columns separated by '\n'.
func encodeColumns(cols []Column) string {
	var sb strings.Builder
	for i, c := range cols {
		if i > 0 {
			sb.WriteByte('\n')
		}
		flags := ""
		if c.NotNull {
			flags += "N"
		}
		if c.RowidAlias {
			flags += "R"
		}
		sb.WriteString(c.Name + "|" + c.Type + "|" + flags)
	}
	return sb.String()
}

func decodeColumns(s string) ([]Column, error) {
	if s == "" {
		return nil, nil
	}
	var cols []Column
	for _, line := range strings.Split(s, "\n") {
		parts := strings.SplitN(line, "|", 3)
		if len(parts) != 3 {
			return nil, fmt.Errorf("sql: corrupt catalog column spec %q", line)
		}
		cols = append(cols, Column{
			Name:       parts[0],
			Type:       parts[1],
			NotNull:    strings.Contains(parts[2], "N"),
			RowidAlias: strings.Contains(parts[2], "R"),
		})
	}
	return cols, nil
}

// loadSchema reads the full catalog from a store through the pager.
func loadSchema(p storage.Pager, temp bool) (*schema, error) {
	s := newSchema()
	tr := btree.Open(p, catalogRoot)
	c := tr.Cursor()
	ok, err := c.First()
	for ; ok && err == nil; ok, err = c.Next() {
		row, derr := record.DecodeRow(c.Value())
		if derr != nil {
			return nil, derr
		}
		if len(row) < 5 {
			return nil, fmt.Errorf("sql: corrupt catalog row with %d fields", len(row))
		}
		kind := row[0].Text()
		switch kind {
		case "table":
			cols, derr := decodeColumns(row[4].Text())
			if derr != nil {
				return nil, derr
			}
			t := &Table{
				Name: row[1].Text(),
				Root: storage.PageID(row[3].Int()),
				Cols: cols,
				Temp: temp,
			}
			s.tables[strings.ToLower(t.Name)] = t
		case "index":
			if len(row) < 6 {
				return nil, fmt.Errorf("sql: corrupt index catalog row")
			}
			ix := &Index{
				Name:   row[1].Text(),
				Table:  row[2].Text(),
				Root:   storage.PageID(row[3].Int()),
				Cols:   strings.Split(row[4].Text(), ","),
				Unique: row[5].Int() != 0,
				Temp:   temp,
			}
			s.indexes[strings.ToLower(ix.Name)] = ix
		case "view":
			if len(row) < 6 {
				return nil, fmt.Errorf("sql: corrupt view catalog row")
			}
			v := &RetroViewDef{
				Name:      row[1].Text(),
				Mechanism: row[2].Text(),
				HasExtra:  row[3].Int() != 0,
				Qq:        row[4].Text(),
				Extra:     row[5].Text(),
			}
			s.views[strings.ToLower(v.Name)] = v
		default:
			return nil, fmt.Errorf("sql: unknown catalog object kind %q", kind)
		}
	}
	return s, err
}

// putTable writes a table's catalog entry.
func putTable(p storage.Pager, t *Table) error {
	tr := btree.Open(p, catalogRoot)
	val := record.EncodeRow(nil, []record.Value{
		record.Text("table"),
		record.Text(t.Name),
		record.Text(t.Name),
		record.Int(int64(t.Root)),
		record.Text(encodeColumns(t.Cols)),
	})
	return tr.Insert(catalogKey("table", t.Name), val)
}

// putIndex writes an index's catalog entry.
func putIndex(p storage.Pager, ix *Index) error {
	tr := btree.Open(p, catalogRoot)
	unique := int64(0)
	if ix.Unique {
		unique = 1
	}
	val := record.EncodeRow(nil, []record.Value{
		record.Text("index"),
		record.Text(ix.Name),
		record.Text(ix.Table),
		record.Int(int64(ix.Root)),
		record.Text(strings.Join(ix.Cols, ",")),
		record.Int(unique),
	})
	return tr.Insert(catalogKey("index", ix.Name), val)
}

// putView writes a retro view's catalog entry. The third field carries
// HasExtra (views have no root page; their result rows live in an
// ordinary side-store table created at first materialization).
func putView(p storage.Pager, v *RetroViewDef) error {
	tr := btree.Open(p, catalogRoot)
	hasExtra := int64(0)
	if v.HasExtra {
		hasExtra = 1
	}
	val := record.EncodeRow(nil, []record.Value{
		record.Text("view"),
		record.Text(v.Name),
		record.Text(v.Mechanism),
		record.Int(hasExtra),
		record.Text(v.Qq),
		record.Text(v.Extra),
	})
	return tr.Insert(catalogKey("view", v.Name), val)
}

// deleteCatalogEntry removes an object's catalog entry.
func deleteCatalogEntry(p storage.Pager, kind, name string) error {
	tr := btree.Open(p, catalogRoot)
	found, err := tr.Delete(catalogKey(kind, name))
	if err != nil {
		return err
	}
	if !found {
		return fmt.Errorf("sql: catalog entry %s %q missing", kind, name)
	}
	return nil
}

// typeAffinity maps a declared type to a storage affinity, following
// SQLite's rules: INT* -> integer, CHAR/CLOB/TEXT -> text,
// REAL/FLOA/DOUB -> real, otherwise numeric (here: none).
type affinity int

const (
	affNone affinity = iota
	affInteger
	affText
	affReal
)

func typeAffinity(declared string) affinity {
	d := strings.ToUpper(declared)
	switch {
	case strings.Contains(d, "INT"):
		return affInteger
	case strings.Contains(d, "CHAR"), strings.Contains(d, "CLOB"), strings.Contains(d, "TEXT"):
		return affText
	case strings.Contains(d, "REAL"), strings.Contains(d, "FLOA"), strings.Contains(d, "DOUB"), strings.Contains(d, "DEC"), strings.Contains(d, "NUM"):
		return affReal
	}
	return affNone
}

// applyAffinity coerces a value according to the column's affinity,
// mirroring SQLite's lossless-only conversions.
func applyAffinity(v record.Value, aff affinity) record.Value {
	if v.IsNull() {
		return v
	}
	switch aff {
	case affInteger:
		switch v.Type() {
		case record.TypeText:
			t := strings.TrimSpace(v.Text())
			if n, err := parseInt(t); err == nil {
				return record.Int(n)
			}
			if f, err := parseFloat(t); err == nil {
				if float64(int64(f)) == f {
					return record.Int(int64(f))
				}
				return record.Float(f)
			}
		case record.TypeFloat:
			if f := v.Float(); float64(int64(f)) == f {
				return record.Int(int64(f))
			}
		}
	case affReal:
		switch v.Type() {
		case record.TypeText:
			if f, err := parseFloat(strings.TrimSpace(v.Text())); err == nil {
				return record.Float(f)
			}
		case record.TypeInt:
			return record.Float(float64(v.Int()))
		}
	case affText:
		switch v.Type() {
		case record.TypeInt, record.TypeFloat:
			return record.Text(v.String())
		}
	}
	return v
}
