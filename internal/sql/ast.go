package sql

import "rql/internal/record"

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// Expr is any parsed expression.
type Expr interface{ expr() }

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

// SelectStmt is a SELECT statement, including the Retro "AS OF" clause
// that runs the query over a declared snapshot.
type SelectStmt struct {
	AsOf     Expr // nil = current state; evaluates to a snapshot id
	Distinct bool
	Cols     []ResultCol
	From     []TableRef
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderTerm
	Limit    Expr
	Offset   Expr
}

// ResultCol is one SELECT-list entry. Star entries select all columns,
// optionally restricted to one table.
type ResultCol struct {
	Star      bool
	StarTable string
	Expr      Expr
	Alias     string
}

// TableRef is a FROM-list entry: a named table or a subquery, with an
// optional join condition linking it to the tables to its left
// (comma-separated refs are cross joins with the condition in WHERE).
type TableRef struct {
	Name     string
	Alias    string
	Subquery *SelectStmt
	JoinCond Expr // ON condition; nil for comma/cross joins
	LeftJoin bool
}

// OrderTerm is one ORDER BY entry.
type OrderTerm struct {
	Expr Expr
	Desc bool
}

// InsertStmt is INSERT INTO ... VALUES/SELECT.
type InsertStmt struct {
	Table  string
	Cols   []string
	Rows   [][]Expr
	Select *SelectStmt
}

// UpdateStmt is UPDATE ... SET ... WHERE.
type UpdateStmt struct {
	Table string
	Cols  []string
	Exprs []Expr
	Where Expr
}

// DeleteStmt is DELETE FROM ... WHERE.
type DeleteStmt struct {
	Table string
	Where Expr
}

// ColDef is one column definition in CREATE TABLE.
type ColDef struct {
	Name       string
	Type       string // declared type (affinity derived from it)
	PrimaryKey bool
	NotNull    bool
}

// CreateTableStmt is CREATE [TEMP] TABLE.
type CreateTableStmt struct {
	Name        string
	Temp        bool
	IfNotExists bool
	Cols        []ColDef
	AsSelect    *SelectStmt
}

// CreateIndexStmt is CREATE [UNIQUE] INDEX.
type CreateIndexStmt struct {
	Name        string
	Table       string
	Cols        []string
	Unique      bool
	IfNotExists bool
}

// DropStmt is DROP TABLE / DROP INDEX.
type DropStmt struct {
	Index    bool // false = table
	Name     string
	IfExists bool
}

// BeginStmt is BEGIN [TRANSACTION].
type BeginStmt struct{}

// CommitStmt is COMMIT, optionally WITH SNAPSHOT (the Retro snapshot
// declaration command).
type CommitStmt struct{ WithSnapshot bool }

// RollbackStmt is ROLLBACK.
type RollbackStmt struct{}

// CreateRetroViewStmt is CREATE RETRO VIEW v AS Mechanism('qq'[,'extra']):
// a materialized, incrementally-maintained retrospective view whose
// definition (mechanism + query arguments) persists in the side store's
// catalog.
type CreateRetroViewStmt struct {
	Name      string
	Mechanism string // CollateData / AggregateDataInVariable / ...
	Qq        string // the retrospective query argument
	Extra     string // second string argument (pairs / column), if any
	HasExtra  bool
}

// DropRetroViewStmt is DROP RETRO VIEW [IF EXISTS] v.
type DropRetroViewStmt struct {
	Name     string
	IfExists bool
}

// RefreshRetroViewStmt is REFRESH RETRO VIEW v: synchronously catch the
// view up to the latest declared snapshot.
type RefreshRetroViewStmt struct{ Name string }

func (*SelectStmt) stmt()           {}
func (*InsertStmt) stmt()           {}
func (*UpdateStmt) stmt()           {}
func (*DeleteStmt) stmt()           {}
func (*CreateTableStmt) stmt()      {}
func (*CreateIndexStmt) stmt()      {}
func (*DropStmt) stmt()             {}
func (*BeginStmt) stmt()            {}
func (*CommitStmt) stmt()           {}
func (*RollbackStmt) stmt()         {}
func (*CreateRetroViewStmt) stmt()  {}
func (*DropRetroViewStmt) stmt()    {}
func (*RefreshRetroViewStmt) stmt() {}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

// Literal is a constant value.
type Literal struct{ Val record.Value }

// ColumnRef names a column, optionally qualified by table or alias.
type ColumnRef struct {
	Table string
	Name  string
}

// ParamRef is a positional '?' parameter (0-based Index).
type ParamRef struct{ Index int }

// UnaryExpr is -x, +x or NOT x.
type UnaryExpr struct {
	Op string
	X  Expr
}

// BinaryExpr is a binary operation (arithmetic, comparison, AND/OR, ||).
type BinaryExpr struct {
	Op   string
	L, R Expr
}

// IsNullExpr is "x IS [NOT] NULL".
type IsNullExpr struct {
	X   Expr
	Not bool
}

// BetweenExpr is "x [NOT] BETWEEN lo AND hi".
type BetweenExpr struct {
	X, Lo, Hi Expr
	Not       bool
}

// InExpr is "x [NOT] IN (list)".
type InExpr struct {
	X    Expr
	List []Expr
	Not  bool
}

// LikeExpr is "x [NOT] LIKE pattern".
type LikeExpr struct {
	X, Pattern Expr
	Not        bool
}

// CaseExpr is CASE [operand] WHEN ... THEN ... [ELSE ...] END.
type CaseExpr struct {
	Operand Expr
	Whens   []WhenClause
	Else    Expr
}

// WhenClause is one WHEN/THEN pair of a CASE expression.
type WhenClause struct{ Cond, Result Expr }

// FuncCall is a function invocation: a scalar builtin, a registered
// UDF (including the RQL mechanism UDFs), or an aggregate in a SELECT.
type FuncCall struct {
	Name     string // lower-cased
	Args     []Expr
	Star     bool // COUNT(*)
	Distinct bool // COUNT(DISTINCT x) etc.
}

func (*Literal) expr()     {}
func (*ColumnRef) expr()   {}
func (*ParamRef) expr()    {}
func (*UnaryExpr) expr()   {}
func (*BinaryExpr) expr()  {}
func (*IsNullExpr) expr()  {}
func (*BetweenExpr) expr() {}
func (*InExpr) expr()      {}
func (*LikeExpr) expr()    {}
func (*CaseExpr) expr()    {}
func (*FuncCall) expr()    {}
