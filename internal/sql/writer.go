package sql

import (
	"bytes"
	"fmt"

	"rql/internal/btree"
	"rql/internal/record"
	"rql/internal/retro"
	"rql/internal/storage"
)

// TableWriter is a prepared write path into one table: it holds a
// writer transaction open and performs inserts, indexed lookups and
// updates without re-parsing SQL. The RQL mechanisms use it for their
// result-table processing (the paper's UDF callbacks run prepared
// operations against the result table for every Qq record).
type TableWriter struct {
	conn *Conn
	tx   *storage.Tx
	own  bool
	t    *Table
	sch  *schema
	done bool
}

// OpenTableWriter opens a writer on the named table. If the table lives
// in the main store and an explicit transaction is open, writes join
// that transaction; otherwise the writer holds its own transaction
// until Commit or Rollback.
func (c *Conn) OpenTableWriter(name string) (*TableWriter, error) {
	toSide, err := c.tableIsTemp(name)
	if err != nil {
		return nil, err
	}
	w := &TableWriter{conn: c}
	switch {
	case toSide:
		tx, err := c.db.side.Begin()
		if err != nil {
			return nil, err
		}
		w.tx, w.own = tx, true
		w.sch, err = loadSchema(tx, true)
		if err != nil {
			tx.Rollback()
			return nil, err
		}
	case c.mainTx != nil:
		w.tx, w.own = c.mainTx, false
		w.sch, err = loadSchema(w.tx, false)
		if err != nil {
			return nil, err
		}
	default:
		tx, err := c.db.main.Begin()
		if err != nil {
			return nil, err
		}
		w.tx, w.own = tx, true
		w.sch, err = loadSchema(tx, false)
		if err != nil {
			tx.Rollback()
			return nil, err
		}
	}
	w.t = w.sch.table(name)
	if w.t == nil {
		w.Rollback()
		return nil, fmt.Errorf("%w: %s", ErrNoTable, name)
	}
	return w, nil
}

// Table returns the column metadata of the target table.
func (w *TableWriter) Table() *Table { return w.t }

// Insert adds one row, maintaining all indexes, and returns its rowid.
func (w *TableWriter) Insert(vals []record.Value) (int64, error) {
	if w.done {
		return 0, storage.ErrTxDone
	}
	cp := append([]record.Value(nil), vals...)
	return insertRow(w.tx, w.t, w.sch, cp)
}

// LookupByIndex finds the first row whose index-key prefix matches vals
// on the named index, returning its rowid and column values.
func (w *TableWriter) LookupByIndex(indexName string, vals []record.Value) (int64, []record.Value, bool, error) {
	if w.done {
		return 0, nil, false, storage.ErrTxDone
	}
	ix := w.sch.index(indexName)
	if ix == nil {
		return 0, nil, false, fmt.Errorf("%w: %s", ErrNoIndex, indexName)
	}
	prefix := record.EncodeKey(nil, vals)
	cur := btree.Open(w.tx, ix.Root).Cursor()
	ok, err := cur.Seek(prefix)
	if err != nil || !ok {
		return 0, nil, false, err
	}
	key := cur.Key()
	if !bytes.HasPrefix(key, prefix) {
		return 0, nil, false, nil
	}
	decoded, err := record.DecodeKey(key)
	if err != nil {
		return 0, nil, false, err
	}
	rowid := decoded[len(decoded)-1].Int()
	row, err := fetchRow(btree.Open(w.tx, w.t.Root), w.t, rowid)
	if err != nil || row == nil {
		return 0, nil, false, err
	}
	return rowid, row[:len(row)-1], true, nil
}

// Update replaces the row identified by rowid (indexes maintained).
func (w *TableWriter) Update(rowid int64, oldVals, newVals []record.Value) error {
	if w.done {
		return storage.ErrTxDone
	}
	if err := deleteRowByID(w.tx, w.t, w.sch, rowid, oldVals); err != nil {
		return err
	}
	cp := append([]record.Value(nil), newVals...)
	return insertRowWithID(w.tx, w.t, w.sch, cp, rowid)
}

// Commit publishes the writes (a no-op handoff when the writer joined
// an explicit transaction).
func (w *TableWriter) Commit() error {
	if w.done {
		return storage.ErrTxDone
	}
	w.done = true
	if !w.own {
		return nil
	}
	return w.tx.Commit()
}

// Rollback discards the writes (only for writers owning their
// transaction; joined writers leave the decision to the owner).
func (w *TableWriter) Rollback() {
	if w.done {
		return
	}
	w.done = true
	if w.own {
		w.tx.Rollback()
	}
}

// TableStats reports a table's size: rows, encoded data bytes, and the
// total key bytes of its indexes. Used by the §5.3 memory-footprint
// experiments.
type TableStats struct {
	Rows       int
	DataBytes  int64
	IndexBytes int64
}

// TableStats measures the named table in the current state.
func (c *Conn) TableStats(name string) (TableStats, error) {
	var out TableStats
	toSide, err := c.tableIsTemp(name)
	if err != nil {
		return out, err
	}
	store := c.db.main
	if toSide {
		store = c.db.side
	}
	rt, err := store.BeginRead()
	if err != nil {
		return out, err
	}
	defer rt.Close()
	sch, err := loadSchema(rt, toSide)
	if err != nil {
		return out, err
	}
	t := sch.table(name)
	if t == nil {
		return out, fmt.Errorf("%w: %s", ErrNoTable, name)
	}
	cur := btree.Open(rt, t.Root).Cursor()
	ok, err := cur.First()
	for ; ok && err == nil; ok, err = cur.Next() {
		out.Rows++
		out.DataBytes += int64(len(cur.Key()) + len(cur.Value()))
	}
	if err != nil {
		return out, err
	}
	for _, ix := range sch.tableIndexes(t.Name) {
		icur := btree.Open(rt, ix.Root).Cursor()
		ok, err := icur.First()
		for ; ok && err == nil; ok, err = icur.Next() {
			out.IndexBytes += int64(len(icur.Key()))
		}
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// Columns plans a SELECT and returns its output column names without
// executing it. asOf = 0 plans against the current state. The RQL
// mechanisms use it to create result tables shaped like Qq's output.
func (c *Conn) Columns(sqlText string, asOf uint64) ([]string, error) {
	return c.columns(sqlText, nil, asOf)
}

func (c *Conn) columns(sqlText string, set *ReaderSet, asOf uint64) ([]string, error) {
	stmt, err := Parse(sqlText)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sql: Columns requires a SELECT")
	}
	bind := retro.SnapshotID(asOf)
	if sel.AsOf != nil {
		v, err := c.constEval(sel.AsOf, nil)
		if err != nil {
			return nil, err
		}
		bind = retro.SnapshotID(v.AsInt())
	}
	stats := ExecStats{}
	ec, err := c.newReadCtx(set, bind, nil, &stats)
	if err != nil {
		return nil, err
	}
	defer ec.close()
	it, cols, err := planSelect(sel, ec)
	if err != nil {
		return nil, err
	}
	it.Close()
	names := make([]string, len(cols))
	for i, ci := range cols {
		names[i] = ci.name
	}
	return names, nil
}

// QuoteIdent quotes an identifier for inclusion in generated SQL.
func QuoteIdent(name string) string { return quoteIdent(name) }

// ObjectInfo describes one catalog object (for shells and tools).
type ObjectInfo struct {
	Kind  string // "table" or "index"
	Name  string
	Table string // owning table for indexes
	Temp  bool   // lives in the non-snapshotable side store
}

// Objects lists every table and index in both stores.
func (c *Conn) Objects() ([]ObjectInfo, error) {
	var out []ObjectInfo
	for _, side := range []bool{false, true} {
		store := c.db.main
		if side {
			store = c.db.side
		}
		rt, err := store.BeginRead()
		if err != nil {
			return nil, err
		}
		sch, err := loadSchema(rt, side)
		rt.Close()
		if err != nil {
			return nil, err
		}
		for _, t := range sch.tables {
			out = append(out, ObjectInfo{Kind: "table", Name: t.Name, Temp: side})
		}
		for _, ix := range sch.indexes {
			out = append(out, ObjectInfo{Kind: "index", Name: ix.Name, Table: ix.Table, Temp: side})
		}
	}
	sortObjects(out)
	return out, nil
}

func sortObjects(objs []ObjectInfo) {
	for i := 1; i < len(objs); i++ {
		for j := i; j > 0 && objLess(objs[j], objs[j-1]); j-- {
			objs[j], objs[j-1] = objs[j-1], objs[j]
		}
	}
}

func objLess(a, b ObjectInfo) bool {
	if a.Kind != b.Kind {
		return a.Kind < b.Kind // indexes before tables is fine; stable rule
	}
	return a.Name < b.Name
}
