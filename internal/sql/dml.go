package sql

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"time"

	"rql/internal/btree"
	"rql/internal/record"
	"rql/internal/storage"
)

// writeEnv is the execution environment of a write statement: an
// execCtx whose pager for the target store is a writer transaction.
type writeEnv struct {
	ec     *execCtx
	tx     *storage.Tx
	own    bool // autocommit: we opened tx and must commit/rollback it
	toSide bool
}

func (w *writeEnv) finish(err error) error {
	if ferr := w.ec.finalize(err == nil); err == nil {
		err = ferr
	}
	w.ec.close()
	if !w.own {
		return err
	}
	if err != nil {
		w.tx.Rollback()
		return err
	}
	return w.tx.Commit()
}

// targetStore decides which store a write statement addresses.
func (c *Conn) targetStore(stmt Statement) (toSide bool, err error) {
	name := ""
	switch s := stmt.(type) {
	case *InsertStmt:
		name = s.Table
	case *UpdateStmt:
		name = s.Table
	case *DeleteStmt:
		name = s.Table
	case *CreateTableStmt:
		return s.Temp, nil
	case *CreateIndexStmt:
		name = s.Table
	case *DropStmt:
		name = s.Name
	case *CreateRetroViewStmt:
		return true, nil // view definitions live in the side store
	case *DropRetroViewStmt:
		return true, nil
	default:
		return false, fmt.Errorf("sql: unsupported write statement %T", stmt)
	}
	// A cheap side-store catalog probe: temp objects shadow main ones.
	rt, err := c.db.side.BeginRead()
	if err != nil {
		return false, err
	}
	defer rt.Close()
	sch, err := c.db.currentSchema(c.db.side, rt, rt.LSN(), true)
	if err != nil {
		return false, err
	}
	if d, ok := stmt.(*DropStmt); ok && d.Index {
		return sch.index(name) != nil, nil
	}
	return sch.table(name) != nil, nil
}

// newWriteEnv builds the environment: a writer transaction on the
// target store, read access to the other store.
func (c *Conn) newWriteEnv(toSide bool, params []record.Value, stats *ExecStats) (*writeEnv, error) {
	w := &writeEnv{toSide: toSide}
	ec := &execCtx{conn: c, params: params, stats: stats}
	w.ec = ec

	if toSide {
		tx, err := c.db.side.BeginCtx(c.ctx)
		if err != nil {
			return nil, err
		}
		w.tx, w.own = tx, true
		ec.sidePager = tx
		// Main store is read-only here.
		if c.mainTx != nil {
			ec.mainPager = c.mainTx
		} else {
			mrt, err := c.db.main.BeginRead()
			if err != nil {
				tx.Rollback()
				return nil, err
			}
			ec.closers = append(ec.closers, mrt.Close)
			ec.mainPager = mrt
		}
	} else {
		if c.mainTx != nil {
			w.tx, w.own = c.mainTx, false
		} else {
			tx, err := c.db.main.BeginCtx(c.ctx)
			if err != nil {
				return nil, err
			}
			tx.SetTraceSpan(c.traceParent())
			w.tx, w.own = tx, true
		}
		ec.mainPager = w.tx
		srt, err := c.db.side.BeginRead()
		if err != nil {
			if w.own {
				w.tx.Rollback()
			}
			return nil, err
		}
		ec.closers = append(ec.closers, srt.Close)
		ec.sidePager = srt
	}

	var err error
	ec.mainSchema, err = loadSchema(ec.mainPager, false)
	if err == nil {
		ec.sideSchema, err = loadSchema(ec.sidePager, true)
	}
	if err != nil {
		if w.own {
			w.tx.Rollback()
		}
		ec.close()
		return nil, err
	}
	return w, nil
}

// conflictBackoff caps the per-attempt backoff of the autocommit
// conflict retry loop (see retryWrite).
const conflictBackoff = time.Millisecond

// retryWrite runs fn, retrying on ErrWriteConflict when the statement
// autocommits (no explicit transaction is open — inside one, the
// conflict belongs to the client, surfacing at COMMIT). Each attempt
// runs on a fresh snapshot with freshly loaded schemas, so re-execution
// is equivalent to the client resubmitting the statement. The loop is
// unbounded: a conflict abort means some other transaction committed,
// so the system as a whole always progresses; a growing, capped backoff
// keeps an unlucky statement from starving under sustained contention.
// stats is reset between attempts so only the winning execution is
// accounted.
func (c *Conn) retryWrite(stats *ExecStats, fn func() error) error {
	for attempt := 0; ; attempt++ {
		err := fn()
		if err == nil || !errors.Is(err, storage.ErrWriteConflict) || c.mainTx != nil {
			return err
		}
		*stats = ExecStats{}
		if attempt >= 4 {
			d := time.Duration(attempt) * 50 * time.Microsecond
			if d > conflictBackoff {
				d = conflictBackoff
			}
			time.Sleep(d)
		}
	}
}

// execWrite executes a non-SELECT, non-transaction-control statement,
// transparently retrying autocommit statements that lose a
// first-committer-wins conflict in the commit group.
func (c *Conn) execWrite(stmt Statement, params []record.Value, stats *ExecStats) error {
	return c.retryWrite(stats, func() error {
		return c.execWriteOnce(stmt, params, stats)
	})
}

func (c *Conn) execWriteOnce(stmt Statement, params []record.Value, stats *ExecStats) error {
	toSide, err := c.targetStore(stmt)
	if err != nil {
		return err
	}
	w, err := c.newWriteEnv(toSide, params, stats)
	if err != nil {
		return err
	}
	switch s := stmt.(type) {
	case *InsertStmt:
		err = w.execInsert(s)
	case *UpdateStmt:
		err = w.execUpdate(s)
	case *DeleteStmt:
		err = w.execDelete(s)
	case *CreateTableStmt:
		err = w.execCreateTable(s)
	case *CreateIndexStmt:
		err = w.execCreateIndex(s)
	case *DropStmt:
		err = w.execDrop(s)
	case *CreateRetroViewStmt:
		err = w.execCreateRetroView(s)
	case *DropRetroViewStmt:
		err = w.execDropRetroView(s)
	default:
		err = fmt.Errorf("sql: unsupported write statement %T", stmt)
	}
	return w.finish(err)
}

// writeTable resolves the target table; it must live in the store the
// write transaction is on.
func (w *writeEnv) writeTable(name string) (*Table, *schema, error) {
	t, sch, _, err := w.ec.resolveTable(name)
	if err != nil {
		return nil, nil, err
	}
	if t.Temp != w.toSide {
		return nil, nil, fmt.Errorf("sql: internal: table %s resolved to the wrong store", name)
	}
	return t, sch, nil
}

func (w *writeEnv) execInsert(s *InsertStmt) error {
	t, sch, err := w.writeTable(s.Table)
	if err != nil {
		return err
	}
	// Column mapping.
	colIdx := make([]int, 0, len(s.Cols))
	for _, cn := range s.Cols {
		k := t.ColIndex(cn)
		if k < 0 {
			return fmt.Errorf("%w: %s.%s", ErrNoColumn, s.Table, cn)
		}
		colIdx = append(colIdx, k)
	}
	buildRow := func(given []record.Value) ([]record.Value, error) {
		if len(s.Cols) == 0 {
			if len(given) != len(t.Cols) {
				return nil, fmt.Errorf("sql: table %s has %d columns but %d values were supplied", t.Name, len(t.Cols), len(given))
			}
			out := make([]record.Value, len(given))
			copy(out, given)
			return out, nil
		}
		if len(given) != len(colIdx) {
			return nil, fmt.Errorf("sql: %d columns but %d values", len(colIdx), len(given))
		}
		out := make([]record.Value, len(t.Cols))
		for i := range out {
			out[i] = record.Null()
		}
		for i, k := range colIdx {
			out[k] = given[i]
		}
		return out, nil
	}

	var sourceRows [][]record.Value
	switch {
	case s.Select != nil:
		it, _, err := planSelect(s.Select, w.ec)
		if err != nil {
			return err
		}
		sourceRows, err = drain(it)
		if err != nil {
			return err
		}
	default:
		env := &compileEnv{ec: w.ec}
		for _, exprRow := range s.Rows {
			vals := make([]record.Value, len(exprRow))
			for i, e := range exprRow {
				ce, err := compileExpr(e, env)
				if err != nil {
					return err
				}
				v, err := ce(&rowCtx{ec: w.ec})
				if err != nil {
					return err
				}
				vals[i] = v
			}
			sourceRows = append(sourceRows, vals)
		}
	}
	for _, given := range sourceRows {
		vals, err := buildRow(given)
		if err != nil {
			return err
		}
		if _, err := insertRow(w.tx, t, sch, vals); err != nil {
			return err
		}
	}
	return nil
}

// insertRow applies affinity and constraints, assigns the rowid, and
// writes the row plus its index entries. It is the single write path
// shared by SQL INSERT, UPDATE (re-insert), bulk loading, and the RQL
// mechanisms' result-table updates.
func insertRow(p storage.Pager, t *Table, sch *schema, vals []record.Value) (int64, error) {
	if len(vals) != len(t.Cols) {
		return 0, fmt.Errorf("sql: table %s has %d columns but %d values", t.Name, len(t.Cols), len(vals))
	}
	aliasIdx := -1
	for i, col := range t.Cols {
		vals[i] = applyAffinity(vals[i], typeAffinity(col.Type))
		if col.NotNull && vals[i].IsNull() {
			return 0, fmt.Errorf("%w: %s.%s", ErrNotNull, t.Name, col.Name)
		}
		if col.RowidAlias {
			aliasIdx = i
		}
	}
	tbl := btree.Open(p, t.Root)

	var rowid int64
	switch {
	case aliasIdx >= 0 && !vals[aliasIdx].IsNull():
		if vals[aliasIdx].Type() != record.TypeInt {
			return 0, fmt.Errorf("sql: %s.%s must be an integer", t.Name, t.Cols[aliasIdx].Name)
		}
		rowid = vals[aliasIdx].Int()
		if _, exists, err := tbl.Get(rowidKey(rowid)); err != nil {
			return 0, err
		} else if exists {
			return 0, fmt.Errorf("%w: %s.%s", ErrUniqueIndex, t.Name, t.Cols[aliasIdx].Name)
		}
	default:
		mk, err := tbl.MaxKey()
		if err != nil {
			return 0, err
		}
		if mk == nil {
			rowid = 1
		} else {
			rowid = decodeRowidKey(mk) + 1
		}
		if aliasIdx >= 0 {
			vals[aliasIdx] = record.Int(rowid)
		}
	}

	// Index entries (with unique checks) before the row itself, so a
	// constraint failure leaves nothing half-written within this
	// statement's view (the enclosing transaction provides atomicity
	// anyway; this just keeps error paths tidy).
	for _, ix := range sch.tableIndexes(t.Name) {
		key, err := indexKey(ix, t, vals, rowid)
		if err != nil {
			return 0, err
		}
		if ix.Unique {
			prefix := key[:len(key)-rowidKeySuffixLen] // strip the rowid component
			if dup, err := indexPrefixExists(p, ix, prefix); err != nil {
				return 0, err
			} else if dup {
				return 0, fmt.Errorf("%w: index %s", ErrUniqueIndex, ix.Name)
			}
		}
		if err := btree.Open(p, ix.Root).Insert(key, nil); err != nil {
			return 0, err
		}
	}
	if err := tbl.Insert(rowidKey(rowid), record.EncodeRow(nil, vals)); err != nil {
		return 0, err
	}
	return rowid, nil
}

// indexKey builds the memcomparable key of one index entry.
func indexKey(ix *Index, t *Table, vals []record.Value, rowid int64) ([]byte, error) {
	kv := make([]record.Value, 0, len(ix.Cols)+1)
	for _, cn := range ix.Cols {
		k := t.ColIndex(cn)
		if k < 0 {
			return nil, fmt.Errorf("%w: index %s references %s", ErrNoColumn, ix.Name, cn)
		}
		kv = append(kv, vals[k])
	}
	kv = append(kv, record.Int(rowid))
	return record.EncodeKey(nil, kv), nil
}

// indexPrefixExists reports whether any index entry starts with prefix.
func indexPrefixExists(p storage.Pager, ix *Index, prefix []byte) (bool, error) {
	cur := btree.Open(p, ix.Root).Cursor()
	ok, err := cur.Seek(prefix)
	if err != nil || !ok {
		return false, err
	}
	return bytes.HasPrefix(cur.Key(), prefix), nil
}

// rowidKeySuffixLen is the encoded size of the trailing rowid component
// every index key carries (a record.Int has a fixed-width encoding);
// unique checks strip it to compare on the value columns alone.
var rowidKeySuffixLen = len(record.EncodeKey(nil, []record.Value{record.Int(0)}))

// deleteRowByID removes one row and its index entries.
func deleteRowByID(p storage.Pager, t *Table, sch *schema, rowid int64, vals []record.Value) error {
	tbl := btree.Open(p, t.Root)
	if _, err := tbl.Delete(rowidKey(rowid)); err != nil {
		return err
	}
	for _, ix := range sch.tableIndexes(t.Name) {
		key, err := indexKey(ix, t, vals, rowid)
		if err != nil {
			return err
		}
		if _, err := btree.Open(p, ix.Root).Delete(key); err != nil {
			return err
		}
	}
	return nil
}

// matchRows materializes the rows of t matching the conjuncts of where
// (each returned row carries the hidden rowid as its last value).
func (w *writeEnv) matchRows(t *Table, sch *schema, where Expr) ([][]record.Value, error) {
	pager := w.pagerFor(t)
	cols := make([]colInfo, 0, len(t.Cols)+1)
	for _, c := range t.Cols {
		cols = append(cols, colInfo{table: strings.ToLower(t.Name), name: strings.ToLower(c.Name)})
	}
	cols = append(cols, colInfo{table: strings.ToLower(t.Name), name: "#rowid"})

	conds := splitAnd(where)
	var it iterator = pickAccessPath(t, sch, pager, conds, w.ec)
	for _, cond := range conds {
		c, err := compileExpr(cond, &compileEnv{cols: cols, ec: w.ec})
		if err != nil {
			return nil, err
		}
		it = &filterIter{src: it, cond: c, ec: w.ec}
	}
	return drain(it)
}

func (w *writeEnv) pagerFor(t *Table) storage.Pager {
	if t.Temp {
		return w.ec.sidePager
	}
	return w.ec.mainPager
}

func (w *writeEnv) execDelete(s *DeleteStmt) error {
	t, sch, err := w.writeTable(s.Table)
	if err != nil {
		return err
	}
	rows, err := w.matchRows(t, sch, s.Where)
	if err != nil {
		return err
	}
	for _, row := range rows {
		rowid := row[len(row)-1].Int()
		if err := deleteRowByID(w.tx, t, sch, rowid, row[:len(row)-1]); err != nil {
			return err
		}
	}
	return nil
}

func (w *writeEnv) execUpdate(s *UpdateStmt) error {
	t, sch, err := w.writeTable(s.Table)
	if err != nil {
		return err
	}
	cols := make([]colInfo, 0, len(t.Cols)+1)
	for _, c := range t.Cols {
		cols = append(cols, colInfo{table: strings.ToLower(t.Name), name: strings.ToLower(c.Name)})
	}
	cols = append(cols, colInfo{table: strings.ToLower(t.Name), name: "#rowid"})
	env := &compileEnv{cols: cols, ec: w.ec}

	setIdx := make([]int, len(s.Cols))
	setExprs := make([]compiledExpr, len(s.Cols))
	for i, cn := range s.Cols {
		k := t.ColIndex(cn)
		if k < 0 {
			return fmt.Errorf("%w: %s.%s", ErrNoColumn, s.Table, cn)
		}
		setIdx[i] = k
		ce, err := compileExpr(s.Exprs[i], env)
		if err != nil {
			return err
		}
		setExprs[i] = ce
	}

	rows, err := w.matchRows(t, sch, s.Where)
	if err != nil {
		return err
	}
	for _, row := range rows {
		rowid := row[len(row)-1].Int()
		newVals := append([]record.Value(nil), row[:len(row)-1]...)
		rc := &rowCtx{row: row, ec: w.ec}
		for i, ce := range setExprs {
			v, err := ce(rc)
			if err != nil {
				return err
			}
			newVals[setIdx[i]] = v
		}
		if err := deleteRowByID(w.tx, t, sch, rowid, row[:len(row)-1]); err != nil {
			return err
		}
		// Keep the rowid stable unless the rowid alias column changed.
		alias := -1
		for i, col := range t.Cols {
			if col.RowidAlias {
				alias = i
			}
		}
		if alias < 0 {
			// Re-insert under the same rowid: temporarily pin it by
			// using the alias-free direct path.
			if err := insertRowWithID(w.tx, t, sch, newVals, rowid); err != nil {
				return err
			}
		} else {
			if _, err := insertRow(w.tx, t, sch, newVals); err != nil {
				return err
			}
		}
	}
	return nil
}

// insertRowWithID inserts a row under a caller-chosen rowid (UPDATE
// keeps rowids stable; bulk loaders preserve generated keys).
func insertRowWithID(p storage.Pager, t *Table, sch *schema, vals []record.Value, rowid int64) error {
	if len(vals) != len(t.Cols) {
		return fmt.Errorf("sql: table %s has %d columns but %d values", t.Name, len(t.Cols), len(vals))
	}
	for i, col := range t.Cols {
		vals[i] = applyAffinity(vals[i], typeAffinity(col.Type))
		if col.NotNull && vals[i].IsNull() {
			return fmt.Errorf("%w: %s.%s", ErrNotNull, t.Name, col.Name)
		}
	}
	for _, ix := range sch.tableIndexes(t.Name) {
		key, err := indexKey(ix, t, vals, rowid)
		if err != nil {
			return err
		}
		if ix.Unique {
			prefix := key[:len(key)-rowidKeySuffixLen]
			if dup, err := indexPrefixExists(p, ix, prefix); err != nil {
				return err
			} else if dup {
				return fmt.Errorf("%w: index %s", ErrUniqueIndex, ix.Name)
			}
		}
		if err := btree.Open(p, ix.Root).Insert(key, nil); err != nil {
			return err
		}
	}
	return btree.Open(p, t.Root).Insert(rowidKey(rowid), record.EncodeRow(nil, vals))
}

func (w *writeEnv) execCreateTable(s *CreateTableStmt) error {
	sch := w.ec.mainSchema
	if w.toSide {
		sch = w.ec.sideSchema
	}
	if sch.table(s.Name) != nil {
		if s.IfNotExists {
			return nil
		}
		return fmt.Errorf("%w: table %s", ErrExists, s.Name)
	}

	var cols []Column
	var rows [][]record.Value
	if s.AsSelect != nil {
		it, outCols, err := planSelect(s.AsSelect, w.ec)
		if err != nil {
			return err
		}
		rows, err = drain(it)
		if err != nil {
			return err
		}
		for _, c := range outCols {
			cols = append(cols, Column{Name: c.name})
		}
	} else {
		intPKs := 0
		for _, cd := range s.Cols {
			cols = append(cols, Column{
				Name:    cd.Name,
				Type:    cd.Type,
				NotNull: cd.NotNull,
			})
		}
		for i, cd := range s.Cols {
			if cd.PrimaryKey && typeAffinity(cd.Type) == affInteger {
				cols[i].RowidAlias = true
				intPKs++
			}
		}
		if intPKs > 1 {
			return fmt.Errorf("sql: table %s has more than one INTEGER PRIMARY KEY", s.Name)
		}
	}

	root, err := btree.Create(w.tx)
	if err != nil {
		return err
	}
	t := &Table{Name: s.Name, Root: root, Cols: cols, Temp: w.toSide}
	if err := putTable(w.tx, t); err != nil {
		return err
	}
	sch.tables[strings.ToLower(t.Name)] = t

	// Non-integer PRIMARY KEY columns get an automatic unique index.
	if s.AsSelect == nil {
		for _, cd := range s.Cols {
			if cd.PrimaryKey && typeAffinity(cd.Type) != affInteger {
				ixRoot, err := btree.Create(w.tx)
				if err != nil {
					return err
				}
				ix := &Index{
					Name:   fmt.Sprintf("pk_%s_%s", s.Name, cd.Name),
					Table:  s.Name,
					Root:   ixRoot,
					Cols:   []string{cd.Name},
					Unique: true,
					Temp:   w.toSide,
				}
				if err := putIndex(w.tx, ix); err != nil {
					return err
				}
				sch.indexes[strings.ToLower(ix.Name)] = ix
			}
		}
	}

	for _, row := range rows {
		if len(row) > len(cols) {
			row = row[:len(cols)]
		}
		if _, err := insertRow(w.tx, t, sch, row); err != nil {
			return err
		}
	}
	return nil
}

func (w *writeEnv) execCreateIndex(s *CreateIndexStmt) error {
	t, sch, err := w.writeTable(s.Table)
	if err != nil {
		return err
	}
	if sch.index(s.Name) != nil {
		if s.IfNotExists {
			return nil
		}
		return fmt.Errorf("%w: index %s", ErrExists, s.Name)
	}
	for _, cn := range s.Cols {
		if t.ColIndex(cn) < 0 {
			return fmt.Errorf("%w: %s.%s", ErrNoColumn, s.Table, cn)
		}
	}
	root, err := btree.Create(w.tx)
	if err != nil {
		return err
	}
	ix := &Index{Name: s.Name, Table: t.Name, Root: root, Cols: s.Cols, Unique: s.Unique, Temp: w.toSide}
	if err := putIndex(w.tx, ix); err != nil {
		return err
	}

	// Populate from the table.
	tree := btree.Open(w.tx, ix.Root)
	scan := newTableScan(w.tx, t)
	for {
		row, err := scan.Next()
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		rowid := row[len(row)-1].Int()
		key, err := indexKey(ix, t, row[:len(row)-1], rowid)
		if err != nil {
			return err
		}
		if ix.Unique {
			prefix := key[:len(key)-rowidKeySuffixLen]
			if dup, err := indexPrefixExists(w.tx, ix, prefix); err != nil {
				return err
			} else if dup {
				return fmt.Errorf("%w: index %s", ErrUniqueIndex, ix.Name)
			}
		}
		if err := tree.Insert(key, nil); err != nil {
			return err
		}
	}
	sch.indexes[strings.ToLower(ix.Name)] = ix
	return nil
}

func (w *writeEnv) execDrop(s *DropStmt) error {
	sch := w.ec.mainSchema
	if w.toSide {
		sch = w.ec.sideSchema
	}
	if s.Index {
		ix := sch.index(s.Name)
		if ix == nil {
			if s.IfExists {
				return nil
			}
			return fmt.Errorf("%w: %s", ErrNoIndex, s.Name)
		}
		if err := btree.Open(w.tx, ix.Root).Drop(); err != nil {
			return err
		}
		if err := deleteCatalogEntry(w.tx, "index", ix.Name); err != nil {
			return err
		}
		delete(sch.indexes, strings.ToLower(ix.Name))
		return nil
	}
	t := sch.table(s.Name)
	if t == nil {
		if s.IfExists {
			return nil
		}
		return fmt.Errorf("%w: %s", ErrNoTable, s.Name)
	}
	for _, ix := range sch.tableIndexes(t.Name) {
		if err := btree.Open(w.tx, ix.Root).Drop(); err != nil {
			return err
		}
		if err := deleteCatalogEntry(w.tx, "index", ix.Name); err != nil {
			return err
		}
		delete(sch.indexes, strings.ToLower(ix.Name))
	}
	if err := btree.Open(w.tx, t.Root).Drop(); err != nil {
		return err
	}
	if err := deleteCatalogEntry(w.tx, "table", t.Name); err != nil {
		return err
	}
	delete(sch.tables, strings.ToLower(t.Name))
	return nil
}

// BulkInsert inserts rows into a table through a single transaction
// (or the open explicit transaction), bypassing SQL parsing. It is the
// fast path for data loading (the TPC-H generator uses it).
func (c *Conn) BulkInsert(table string, rows [][]record.Value) error {
	toSide, err := c.tableIsTemp(table)
	if err != nil {
		return err
	}
	var stats ExecStats
	return c.retryWrite(&stats, func() error {
		w, err := c.newWriteEnv(toSide, nil, &stats)
		if err != nil {
			return err
		}
		err = func() error {
			t, sch, err := w.writeTable(table)
			if err != nil {
				return err
			}
			for _, row := range rows {
				vals := append([]record.Value(nil), row...)
				if _, err := insertRow(w.tx, t, sch, vals); err != nil {
					return err
				}
			}
			return nil
		}()
		return w.finish(err)
	})
}

func (c *Conn) tableIsTemp(name string) (bool, error) {
	rt, err := c.db.side.BeginRead()
	if err != nil {
		return false, err
	}
	defer rt.Close()
	sch, err := c.db.currentSchema(c.db.side, rt, rt.LSN(), true)
	if err != nil {
		return false, err
	}
	return sch.table(name) != nil, nil
}
