package sql

import (
	"time"

	"rql/internal/obs"
	"rql/internal/retro"
	"rql/internal/storage"
)

// PageSet is a set of page ids — a statement's page read-set or a
// member's delta page set. It aliases the underlying storage map type
// so retro-level sets convert freely without copying.
type PageSet = map[storage.PageID]struct{}

// ReaderSet is a pre-built snapshot reader set: the SPT of every member
// derived by one batch Maplog sweep and one shared pinned MVCC read
// transaction (retro.SnapshotSet). Conn.ExecAsOfSet executes AS OF
// queries against it with O(1) per-snapshot open cost — the batch path
// of the RQL mechanisms' snapshot-set loop.
//
// A ReaderSet is immutable after construction and safe for concurrent
// use from multiple connections (parallel mechanism workers share one).
// Close must be called when the run is done; it releases the pinned
// read transaction.
type ReaderSet struct {
	set      *retro.SnapshotSet
	prefetch bool
}

// OpenSnapshotSet builds the SPTs of all snapshots in ids with a single
// Maplog sweep and pins one shared MVCC read transaction. Duplicates
// are ignored; order does not matter.
func (c *Conn) OpenSnapshotSet(ids []uint64) (*ReaderSet, error) {
	rids := make([]retro.SnapshotID, len(ids))
	for i, id := range ids {
		rids[i] = retro.SnapshotID(id)
	}
	set, err := c.db.rsys.OpenSnapshotSet(rids)
	if err != nil {
		return nil, err
	}
	return &ReaderSet{set: set}, nil
}

// SetPrefetch enables clustered Pagelog prefetching: when a member is
// opened for execution, every pre-state its SPT resolves that is not
// yet cached is bulk-loaded with sorted, coalesced reads (adjacent
// Pagelog offsets cost one ReadAt). Off by default — prefetching can
// fetch pages the query never touches, which changes the PagelogReads
// accounting the paper's figures are built on.
func (rs *ReaderSet) SetPrefetch(on bool) { rs.prefetch = on }

// Snapshots returns the member snapshot ids, sorted ascending.
func (rs *ReaderSet) Snapshots() []uint64 {
	ids := rs.set.Snapshots()
	out := make([]uint64, len(ids))
	for i, id := range ids {
		out[i] = uint64(id)
	}
	return out
}

// Contains reports whether snap is a member of the set.
func (rs *ReaderSet) Contains(snap uint64) bool {
	return rs.set.Contains(retro.SnapshotID(snap))
}

// MemberIndex returns snap's position in the set's ascending member
// order (false if snap is not a member).
func (rs *ReaderSet) MemberIndex(snap uint64) (int, bool) {
	return rs.set.MemberIndex(retro.SnapshotID(snap))
}

// DeltaLen returns the number of pages differing between the members
// at positions i-1 and i of the ascending member order (0 for i = 0).
func (rs *ReaderSet) DeltaLen(i int) int { return len(rs.set.Delta(i)) }

// DeltaDisjoint reports whether every page differing between the
// members at positions a and b of the ascending member order is absent
// from readSet — the proof obligation of delta pruning: when true, a
// statement whose read-set is readSet returns identical results on
// both members. examined counts the delta pages tested.
func (rs *ReaderSet) DeltaDisjoint(a, b int, readSet PageSet) (disjoint bool, examined int) {
	return rs.set.DeltaDisjoint(a, b, readSet)
}

// Scanned returns the total Maplog entries examined by the batch sweep.
func (rs *ReaderSet) Scanned() int { return rs.set.Scanned }

// BuildTime returns the wall time of the batch sweep.
func (rs *ReaderSet) BuildTime() time.Duration { return rs.set.BuildTime }

// Close releases the set's pinned read transaction. Idempotent.
func (rs *ReaderSet) Close() { rs.set.Close() }

// Warm is an in-flight asynchronous cache-warming batch started by
// ReaderSet.Warm or WarmAll. It holds a private member reader for the
// duration of the fetch; Wait (idempotent) releases it.
type Warm struct {
	r     *retro.SnapshotReader
	f     *retro.Fetch
	once  bool
	pages int
	err   error
}

// Planned returns the number of pages the warm set out to load.
func (w *Warm) Planned() int { return w.f.Pages() }

// Runs returns the number of coalesced device commands issued.
func (w *Warm) Runs() int { return w.f.Runs() }

// Duration is the fetch wall time; meaningful only after Wait.
func (w *Warm) Duration() time.Duration { return w.f.Duration() }

// Wait blocks until the warm completed (or was canceled by the set
// closing) and returns the number of pages installed in the snapshot
// cache. Idempotent.
func (w *Warm) Wait() (int, error) {
	if !w.once {
		w.once = true
		w.pages, w.err = w.f.Wait()
		w.r.Close()
	}
	return w.pages, w.err
}

// Warm asynchronously loads the subset of pages that snap's SPT maps to
// archived pre-states into the snapshot page cache, capped at budget
// pages (0 = no cap). Warmed pages are not billed to any statement; the
// first demand read that touches one bills its PagelogRead then, so
// per-read accounting is identical with warming on or off. The returned
// handle must be Waited (it pins a member reader until then).
// sp, when non-nil, parents the fetch's device-command spans.
func (rs *ReaderSet) Warm(snap uint64, pages PageSet, budget int, sp *obs.Span) (*Warm, error) {
	r, err := rs.set.Open(retro.SnapshotID(snap))
	if err != nil {
		return nil, err
	}
	r.SetTraceSpan(sp)
	ids := make([]storage.PageID, 0, len(pages))
	for id := range pages {
		ids = append(ids, id)
	}
	f, err := r.FetchBatch(ids, budget)
	if err != nil {
		r.Close()
		return nil, err
	}
	return &Warm{r: r, f: f}, nil
}

// WarmAll is Warm over every page in snap's SPT — the clustered-
// prefetch plan, used when no read-set is available to narrow the warm.
func (rs *ReaderSet) WarmAll(snap uint64, budget int, sp *obs.Span) (*Warm, error) {
	r, err := rs.set.Open(retro.SnapshotID(snap))
	if err != nil {
		return nil, err
	}
	r.SetTraceSpan(sp)
	f, err := r.PrefetchAsync(budget)
	if err != nil {
		r.Close()
		return nil, err
	}
	return &Warm{r: r, f: f}, nil
}

// openSnapReader opens a reader for asOf, from the set when it has the
// snapshot (O(1), shared pin) and standalone otherwise.
func openSnapReader(rsys *retro.System, set *ReaderSet, asOf retro.SnapshotID) (*retro.SnapshotReader, error) {
	if set == nil || !set.set.Contains(asOf) {
		return rsys.OpenSnapshot(asOf)
	}
	r, err := set.set.Open(asOf)
	if err != nil {
		return nil, err
	}
	if set.prefetch {
		if _, _, err := r.Prefetch(); err != nil {
			r.Close()
			return nil, err
		}
	}
	return r, nil
}

// ColumnsSet is Columns executed against a reader set (see ExecAsOfSet).
func (c *Conn) ColumnsSet(sqlText string, set *ReaderSet, asOf uint64) ([]string, error) {
	return c.columns(sqlText, set, asOf)
}
