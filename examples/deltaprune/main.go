// Delta pruning: skipping snapshots a retrospective query cannot tell
// apart.
//
// A monitoring schedule declares a snapshot every night whether or not
// the data changed, so most real snapshot sets contain long quiet
// stretches. A mechanism iteration whose query would read only pages
// that did not change since the previous member must produce the same
// rows — so the engine skips it: it records the page read-set of each
// executed iteration, intersects it with the per-member page deltas
// retained by the batch SPT sweep, and replays the cached result when
// the intersection is empty (re-tagging current_snapshot() columns).
//
// This walkthrough declares 24 nightly snapshots of which only every
// 4th follows a refresh, runs CollateData with pruning on and off, and
// shows the per-iteration breakdown and why a non-prunable query falls
// back.
package main

import (
	"fmt"
	"log"
	"time"

	"rql/internal/bench"
)

func main() {
	env, err := bench.NewEnv(bench.UW30, 1, bench.Config{SF: 0.002})
	if err != nil {
		log.Fatal(err)
	}
	defer env.Close()
	conn := env.Conn

	// 24 nightly snapshots; the refresh job only ran every 4th night.
	if err := env.ExtendSparse(24, 4); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("history: %d snapshots, %d with refreshes, %d quiet\n\n",
		env.Last, (24+3)/4+1, 24-(24+3)/4)

	qs := `SELECT snap_id FROM SnapIds WHERE snap_id >= 2`
	qq := `SELECT o_orderkey, o_totalprice, current_snapshot() AS sid
	       FROM orders WHERE o_orderstatus = 'O'`

	// Pruning is on by default; time the same run both ways.
	start := time.Now()
	pruned, err := env.R.CollateData(conn, qs, qq, "OpenOrdersPruned")
	if err != nil {
		log.Fatal(err)
	}
	prunedWall := time.Since(start)

	env.R.SetDeltaPrune(false)
	start = time.Now()
	full, err := env.R.CollateData(conn, qs, qq, "OpenOrdersFull")
	if err != nil {
		log.Fatal(err)
	}
	fullWall := time.Since(start)
	env.R.SetDeltaPrune(true)

	fmt.Printf("pruned run:   %v — %d/%d iterations skipped, %d rows replayed from cache\n",
		prunedWall.Round(time.Microsecond), pruned.PrunedIterations,
		len(pruned.Iterations), pruned.PrunedRowsReplayed)
	fmt.Printf("unpruned run: %v — %d iterations executed in full (%s)\n\n",
		fullWall.Round(time.Microsecond), len(full.Iterations), full.PruneReason)

	// Both tables hold byte-identical results; prove it cheaply.
	var a, b int64
	count := func(table string, into *int64) {
		rows, err := conn.Query(`SELECT COUNT(*) FROM ` + table)
		if err != nil {
			log.Fatal(err)
		}
		*into = rows.Rows[0][0].Int()
	}
	count("OpenOrdersPruned", &a)
	count("OpenOrdersFull", &b)
	fmt.Printf("result rows: pruned %d, unpruned %d\n\n", a, b)

	fmt.Println("per-iteration breakdown (pruned run):")
	for _, it := range pruned.Iterations {
		mark := "executed"
		if it.Pruned {
			mark = "pruned"
		}
		fmt.Printf("  snap %-3d %-8s eval=%-12v rows=%-4d delta pages examined=%d\n",
			it.Snapshot, mark, it.QueryEval.Round(time.Microsecond), it.QqRows, it.DeltaPages)
	}

	// A query the analyzer cannot prove snapshot-pure runs unpruned —
	// and the run stats say why.
	unsafe, err := env.R.CollateData(conn, qs,
		`SELECT o_orderkey FROM orders WHERE o_orderkey < current_snapshot() * 1000000`,
		"NotPrunable")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnon-prunable Qq fell back to full execution: %s\n", unsafe.PruneReason)
}
