// Pipelined asynchronous Pagelog I/O: overlapping the next iteration's
// page fetches with the current iteration's evaluation.
//
// A retrospective run visits its snapshots in order, and after one
// iteration the engine knows a lot about the next: the previous
// read-set mapped through SPT(S_{i+1}) is almost exactly the set of
// pages the next iteration will demand. With the device modeled as a
// bounded worker pool (queue depth 8 by default) those pages can be
// warmed in the background while the current iteration computes, so
// their service latency disappears from the critical path.
//
// Accounting is untouched: warmed pages are billed lazily, on the
// first demand read that touches them, so PagelogReads — and every
// per-iteration counter series the paper's figures are built on — is
// byte-identical with the pipeline on or off. This walkthrough builds
// an aged snapshot history on a deliberately slow device (1ms per read
// command, really slept), runs CollateData with the pipeline off and
// on, and prints both sides' walls and counters.
package main

import (
	"fmt"
	"log"
	"time"

	"rql/internal/bench"
	"rql/internal/core"
)

func main() {
	// A cold storage tier: cache-missing reads genuinely sleep 1ms per
	// device command, up to 8 commands in service concurrently.
	env, err := bench.NewEnv(bench.UW60, 1, bench.Config{
		SF:               0.002,
		ReadLatency:      time.Millisecond,
		SleepOnRead:      true,
		DeviceQueueDepth: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer env.Close()

	// Measured window: 6 snapshots spaced 4 apart, then one full
	// overwrite cycle of further history so every window page is
	// archived — the scans below are real Pagelog reads, not shared
	// current-database pages.
	const members, stride = 6, 4
	last := 2 + stride*(members-1)
	if err := env.Extend(last + bench.UW60.Cycle - 1); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("history: %d snapshots; measuring %d members spaced %d apart on a 1ms device\n\n",
		env.Last, members, stride)

	qs := fmt.Sprintf(`SELECT snap_id FROM SnapIds
		WHERE snap_id >= 2 AND snap_id <= %d AND (snap_id - 2) %% %d = 0
		ORDER BY snap_id`, last, stride)
	qq := `SELECT o_orderkey, current_snapshot() AS sid
	       FROM orders WHERE o_orderstatus = 'O'`

	run := func(table string) (*core.RunStats, time.Duration) {
		env.DB.Retro().ResetCache() // cold run, both sides
		start := time.Now()
		rs, err := env.R.CollateData(env.Conn, qs, qq, table)
		if err != nil {
			log.Fatal(err)
		}
		return rs, time.Since(start)
	}

	env.R.SetPipelinedIO(false)
	serial, serialWall := run("OpenOrdersSerial")

	env.R.SetPipelinedIO(true) // the default
	pipe, pipeWall := run("OpenOrdersPipelined")

	fmt.Printf("serial:    %8v  (%d pagelog reads)\n",
		serialWall.Round(time.Millisecond), serial.Total().PagelogReads)
	fmt.Printf("pipelined: %8v  (%d pagelog reads, %d pages warmed ahead, %d prefetch hits, %d wasted)\n",
		pipeWall.Round(time.Millisecond), pipe.Total().PagelogReads,
		pipe.PipelinedPrefetches, pipe.PrefetchHits, pipe.PrefetchWasted)
	fmt.Printf("speedup:   %.2fx; device time hidden behind evaluation: %v\n\n",
		float64(serialWall)/float64(pipeWall),
		pipe.Total().OverlapTime.Round(time.Millisecond))

	if s, p := serial.Total().PagelogReads, pipe.Total().PagelogReads; s != p {
		log.Fatalf("accounting drifted: serial billed %d reads, pipelined %d", s, p)
	}
	fmt.Println("billed reads identical — the pipeline moves device time, never work:")
	fmt.Printf("  %-10s %8s %8s %8s\n", "iteration", "reads", "hits", "overlap")
	for _, it := range pipe.Iterations {
		fmt.Printf("  S%-9d %8d %8d %8v\n",
			it.Snapshot, it.PagelogReads, it.PrefetchHits,
			it.OverlapTime.Round(time.Millisecond))
	}
}
