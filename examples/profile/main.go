// Profiling a retrospective query with EXPLAIN ANALYZE.
//
// EXPLAIN shows the plan the engine chose. EXPLAIN ANALYZE goes
// further: it executes the statement through that exact iterator tree
// — same planning pass, same read context, same billed counters as
// running it plainly — and appends what the execution cost. For a
// plain SELECT that is one EXECUTED summary line (rows, wall time,
// Pagelog reads, cache hits, SPT build time, device queue wait). For
// a statement that drives a retrospective mechanism, the report adds
// the paper's §4 cost model: a MECHANISM header (pruned iterations,
// replayed rows, prefetch hits) and one ITERATION line per snapshot
// with its wall time split into SPT build, index creation, query
// evaluation, UDF time and I/O, plus the billed reads and rows.
//
// EXPLAIN ANALYZE is observation-only by construction: the property
// test TestExplainAnalyzeMatchesPlainRun pins its counters
// byte-identical to plain execution. The same per-run profile feeds
// the slow-query log, so a slow mechanism statement logs its
// mechanism name, pruning counts and Pagelog reads alongside the
// usual fields.
//
// This walkthrough builds the paper's LoggedIn example (Figure 1),
// profiles a plain retrospective SELECT and the Figure 3 CollateData
// run, and prints both reports.
package main

import (
	"fmt"
	"log"
	"time"

	"rql"
)

func main() {
	// A sleeping device makes the I/O columns real wall time instead
	// of zeros: every cache-missing Pagelog read costs 200µs here.
	db, err := rql.Open(rql.Options{
		SimulatedReadLatency: 200 * time.Microsecond,
		SleepOnRead:          true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	conn := db.Conn()

	exec := func(sql string) {
		if err := conn.Exec(sql, nil); err != nil {
			log.Fatalf("%s: %v", sql, err)
		}
	}

	exec(`CREATE TABLE LoggedIn (l_userid TEXT, l_time TEXT, l_country TEXT)`)
	exec(`BEGIN`)
	exec(`INSERT INTO LoggedIn VALUES
		('UserA', '2008-11-09 13:23:44', 'USA'),
		('UserB', '2008-11-09 15:45:21', 'UK'),
		('UserC', '2008-11-09 15:45:21', 'USA')`)
	declare(conn, "2008-11-09")
	exec(`BEGIN`)
	exec(`DELETE FROM LoggedIn WHERE l_userid = 'UserA'`)
	declare(conn, "2008-11-10")
	exec(`BEGIN`)
	exec(`INSERT INTO LoggedIn VALUES ('UserD', '2008-11-11 10:08:04', 'UK')`)
	declare(conn, "2008-11-11")

	report := func(sql string) {
		fmt.Printf("rql> %s\n", sql)
		if err := conn.Exec(sql, func(_ []string, row []rql.Value) error {
			fmt.Println(row[0].Text())
			return nil
		}); err != nil {
			log.Fatalf("%s: %v", sql, err)
		}
		fmt.Println()
	}

	// A plain retrospective read: the plan, then the EXECUTED summary.
	// Cold cache so the reads show up as Pagelog reads, not cache hits.
	db.ResetSnapshotCache()
	report(`EXPLAIN ANALYZE SELECT AS OF 1 l_userid FROM LoggedIn ORDER BY l_userid`)

	// The Figure 3 mechanism run: CollateData evaluates Qq on every
	// snapshot of the Qs set. The report adds the MECHANISM header and
	// one ITERATION line per snapshot with the §4 cost split.
	db.ResetSnapshotCache()
	report(`EXPLAIN ANALYZE SELECT CollateData(snap_id,
		'SELECT DISTINCT l_userid, current_snapshot() AS sid FROM LoggedIn',
		'Result') FROM SnapIds`)

	// EXPLAIN ANALYZE ran the statement for real: Result exists.
	fmt.Println("rql> SELECT l_userid, sid FROM Result ORDER BY sid, l_userid")
	if err := conn.Exec(`SELECT l_userid, sid FROM Result ORDER BY sid, l_userid`,
		func(_ []string, row []rql.Value) error {
			fmt.Printf("  %-6s snapshot %d\n", row[0].Text(), row[1].Int())
			return nil
		}); err != nil {
		log.Fatal(err)
	}
}

func declare(conn *rql.Conn, label string) {
	id, err := conn.CommitWithSnapshot()
	if err != nil {
		log.Fatal(err)
	}
	if err := conn.EnsureSnapIds(); err != nil {
		log.Fatal(err)
	}
	if err := conn.Exec(`INSERT INTO SnapIds (snap_id, snap_ts, label) VALUES (?, ?, ?)`,
		nil, rql.Int(int64(id)), rql.Text(label+" 23:59:59"), rql.Text(label)); err != nil {
		log.Fatal(err)
	}
}
