// End-to-end tracing: watch one retrospective computation travel down
// the whole stack.
//
// The span recorder (internal/obs) is off by default and costs one
// atomic load per instrumentation site while off. Switched on, every
// layer contributes spans to a per-process ring: the SQL engine
// (parse/plan/execute), the mechanisms (one span per snapshot
// iteration, with its billed reads and row counts as attributes), the
// Retro layer (SPT construction, Pagelog fetches) and the device pool
// (one span per device command, including how long it waited in the
// queue). Spans of one statement form a connected tree under one trace
// ID; tracing never changes the billed counters the paper's figures
// are plotted from.
//
// This walkthrough builds the paper's LoggedIn example, traces the
// CollateData run from Figure 3, prints its span tree, and writes the
// whole ring as Chrome trace-event JSON — drag rql_trace.json into
// https://ui.perfetto.dev to see the same tree as nested slices. It
// also arms the slow-query log with a tiny threshold so the traced
// statements land there too.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"rql"
	"rql/internal/obs"
)

func main() {
	db, err := rql.Open(rql.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	conn := db.Conn()

	exec := func(sql string) {
		if err := conn.Exec(sql, nil); err != nil {
			log.Fatalf("%s: %v", sql, err)
		}
	}

	exec(`CREATE TABLE LoggedIn (l_userid TEXT, l_time TEXT, l_country TEXT)`)
	exec(`BEGIN`)
	exec(`INSERT INTO LoggedIn VALUES
		('UserA', '2008-11-09 13:23:44', 'USA'),
		('UserB', '2008-11-09 15:45:21', 'UK'),
		('UserC', '2008-11-09 15:45:21', 'USA')`)
	declare(conn, "2008-11-09")
	exec(`BEGIN`)
	exec(`DELETE FROM LoggedIn WHERE l_userid = 'UserA'`)
	declare(conn, "2008-11-10")
	exec(`BEGIN`)
	exec(`INSERT INTO LoggedIn VALUES ('UserD', '2008-11-11 10:08:04', 'UK')`)
	declare(conn, "2008-11-11")

	// Arm the recorder and the slow-query log (any statement over 1µs
	// counts as slow here, so the demo statements all land in the log).
	rql.SetTracing(true)
	rql.SetSlowQueryThreshold(time.Microsecond)

	// A cold snapshot cache makes the mechanism's reads travel the full
	// path — Pagelog fetch, device command — instead of stopping at the
	// page cache, so those layers' spans show up in the tree.
	db.ResetSnapshotCache()

	exec(`SELECT CollateData(snap_id,
		'SELECT DISTINCT l_userid, current_snapshot() AS sid FROM LoggedIn',
		'Result') FROM SnapIds`)

	trace := obs.LastTrace()
	fmt.Printf("trace %d — CollateData over 3 snapshots, top to bottom:\n\n", trace)
	fmt.Println(obs.FormatTree(obs.TraceSpans(trace)))

	// The same ring, exported for Perfetto / chrome://tracing.
	f, err := os.Create("rql_trace.json")
	if err != nil {
		log.Fatal(err)
	}
	if err := obs.WriteTraceEvents(f, obs.Spans()); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote rql_trace.json — open it at https://ui.perfetto.dev")

	fmt.Printf("\nslow-query log (threshold %v):\n", time.Microsecond)
	for _, e := range obs.SlowEntries() {
		fmt.Printf("  %8v  %4d rows  trace=%d  %.60s\n", e.Duration.Round(time.Microsecond), e.Rows, e.Trace, e.SQL)
	}

	// Off again: the recorder is a toggle, not a mode — and with it off
	// the instrumented paths are nil-span no-ops.
	rql.SetTracing(false)
}

func declare(conn *rql.Conn, label string) {
	id, err := conn.CommitWithSnapshot()
	if err != nil {
		log.Fatal(err)
	}
	if err := conn.EnsureSnapIds(); err != nil {
		log.Fatal(err)
	}
	if err := conn.Exec(`INSERT INTO SnapIds (snap_id, snap_ts, label) VALUES (?, ?, ?)`,
		nil, rql.Int(int64(id)), rql.Text(label+" 23:59:59"), rql.Text(label)); err != nil {
		log.Fatal(err)
	}
}
