// Quickstart: the paper's LoggedIn example (Figures 1–3) end to end —
// declare snapshots with COMMIT WITH SNAPSHOT, query one with SELECT AS
// OF, then run a multi-snapshot computation with CollateData, both
// through the Go API and through the SQL UDF form.
package main

import (
	"fmt"
	"log"

	"rql"
)

func main() {
	db, err := rql.Open(rql.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	conn := db.Conn()

	exec := func(sql string) {
		if err := conn.Exec(sql, nil); err != nil {
			log.Fatalf("%s: %v", sql, err)
		}
	}
	show := func(title, sql string) {
		rows, err := conn.Query(sql)
		if err != nil {
			log.Fatalf("%s: %v", sql, err)
		}
		fmt.Printf("\n%s\n  %s\n", title, sql)
		for _, r := range rows.Rows {
			fmt.Print("  ")
			for i, v := range r {
				if i > 0 {
					fmt.Print(" | ")
				}
				fmt.Print(v)
			}
			fmt.Println()
		}
	}

	exec(`CREATE TABLE LoggedIn (l_userid TEXT, l_time TEXT, l_country TEXT)`)

	// Snapshot S1: UserA, UserB and UserC are logged in (Figure 1a).
	exec(`BEGIN`)
	exec(`INSERT INTO LoggedIn VALUES
		('UserA', '2008-11-09 13:23:44', 'USA'),
		('UserB', '2008-11-09 15:45:21', 'UK'),
		('UserC', '2008-11-09 15:45:21', 'USA')`)
	s1 := declare(conn, "2008-11-09")

	// Snapshot S2: UserA logs out (Figure 1b).
	exec(`BEGIN`)
	exec(`DELETE FROM LoggedIn WHERE l_userid = 'UserA'`)
	declare(conn, "2008-11-10")

	// Snapshot S3: UserD logs in (Figure 1c).
	exec(`BEGIN`)
	exec(`INSERT INTO LoggedIn VALUES ('UserD', '2008-11-11 10:08:04', 'UK')`)
	declare(conn, "2008-11-11")

	// Retrospective query on a single snapshot vs the current state
	// (Figure 3, lines 9–10).
	show("Who was logged in at snapshot 1?", fmt.Sprintf(`SELECT AS OF %d * FROM LoggedIn`, s1))
	show("Who is logged in now?", `SELECT * FROM LoggedIn`)
	show("Declared snapshots", `SELECT snap_id, label FROM SnapIds`)

	// Multi-snapshot computation via the Go API (§2.1's example).
	if _, err := conn.CollateData(
		`SELECT snap_id FROM SnapIds`,
		`SELECT DISTINCT l_userid, current_snapshot() AS sid FROM LoggedIn`,
		"Result"); err != nil {
		log.Fatal(err)
	}
	show("CollateData: every user with the snapshots they appear in",
		`SELECT l_userid, sid FROM Result ORDER BY l_userid, sid`)

	// The same computation in pure SQL: the mechanism UDF interposed on
	// the snapshot-set query, the paper's §3 implementation structure.
	exec(`SELECT CollateData(snap_id,
		'SELECT DISTINCT l_userid, current_snapshot() AS sid FROM LoggedIn',
		'Result2') FROM SnapIds`)
	show("Same result via the SQL UDF form",
		`SELECT COUNT(*) AS rows_collected FROM Result2`)

	// Count the snapshots in which UserB was logged in (§2.2).
	if _, err := conn.AggregateDataInVariable(
		`SELECT snap_id FROM SnapIds`,
		`SELECT DISTINCT 1 FROM LoggedIn WHERE l_userid = 'UserB'`,
		"UserBSnaps", "sum"); err != nil {
		log.Fatal(err)
	}
	show("AggregateDataInVariable: snapshots with UserB logged in",
		`SELECT * FROM UserBSnaps`)
}

func declare(conn *rql.Conn, label string) uint64 {
	id, err := conn.CommitWithSnapshot()
	if err != nil {
		log.Fatal(err)
	}
	if err := conn.EnsureSnapIds(); err != nil {
		log.Fatal(err)
	}
	if err := conn.Exec(`INSERT INTO SnapIds (snap_id, snap_ts, label) VALUES (?, ?, ?)`,
		nil, rql.Int(int64(id)), rql.Text(label+" 23:59:59"), rql.Text(label)); err != nil {
		log.Fatal(err)
	}
	return id
}
