// Incremental materialized retro views: a mechanism as a standing
// computation instead of a batch run.
//
// CollateData answers "who was logged in at every snapshot" by
// recomputing all n snapshots each time it runs — O(n) per question.
// A monitoring workload asks the same question after every new
// snapshot, so the total cost is quadratic in the history. A retro
// view materializes the mechanism once and then extends the result
// table by exactly one delta-pruned iteration per COMMIT WITH
// SNAPSHOT: O(1) per new snapshot, with quiet snapshots replayed from
// the prune cache without evaluating the query at all.
//
// This walkthrough creates a view over a presence table, subscribes to
// its extension stream, declares 12 "minutes" of snapshots (a third of
// them quiet), and shows each pushed batch, the view's status counters,
// and a retrospective question answered straight from the materialized
// table.
package main

import (
	"fmt"
	"log"
	"time"

	"rql"
)

func main() {
	db, err := rql.Open(rql.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	conn := db.Conn()

	exec := func(sqlText string, params ...rql.Value) {
		if err := conn.Exec(sqlText, nil, params...); err != nil {
			log.Fatalf("%s: %v", sqlText, err)
		}
	}
	exec(`CREATE TABLE logged_in (user TEXT, region TEXT)`)

	// The view is created before any snapshot exists; it will follow the
	// history as it grows. All four mechanisms work as view bodies —
	// CollateData is the natural fit for presence-over-time.
	exec(`CREATE RETRO VIEW sessions AS
	      CollateData('SELECT user, region, current_snapshot() AS sid FROM logged_in')`)

	// Subscribe before writing: every extension the view materializes
	// from here on is pushed into the buffer. Over the wire this is
	// client.Conn.SubscribeView; in-process it is the same stream.
	sub, err := db.SubscribeView("sessions", 64)
	if err != nil {
		log.Fatal(err)
	}

	// Presence traffic: logins and logouts, with every third minute
	// quiet — nothing changed, but the monitoring schedule declares a
	// snapshot anyway. Those are the iterations delta pruning replays.
	type step struct{ in, out string }
	script := []step{
		{in: "ann"}, {in: "ben"}, {}, {in: "cal", out: "ann"},
		{in: "dee"}, {}, {out: "ben"}, {in: "ann"},
		{}, {out: "cal"}, {in: "eve"}, {},
	}
	regions := map[string]string{"ann": "EU", "ben": "US", "cal": "EU", "dee": "APAC", "eve": "US"}
	for minute, s := range script {
		exec(`BEGIN`)
		if s.in != "" {
			exec(`INSERT INTO logged_in VALUES (?, ?)`, rql.Text(s.in), rql.Text(regions[s.in]))
		}
		if s.out != "" {
			exec(`DELETE FROM logged_in WHERE user = ?`, rql.Text(s.out))
		}
		id, err := conn.CommitWithSnapshot()
		if err != nil {
			log.Fatal(err)
		}
		if err := conn.EnsureSnapIds(); err != nil {
			log.Fatal(err)
		}
		if err := conn.RecordSnapshot(id, time.Unix(int64(minute)*60, 0).UTC(),
			fmt.Sprintf("minute %d", minute+1)); err != nil {
			log.Fatal(err)
		}
	}

	// The background refresher follows commits on its own; REFRESH is
	// the synchronous form — it returns once the view has caught up.
	exec(`REFRESH RETRO VIEW sessions`)

	// Drain the stream: one batch per snapshot, in order, each carrying
	// the rows materialized for that snapshot. Cancel closes the channel
	// after the buffered batches.
	sub.Cancel()
	fmt.Println("pushed extensions:")
	for b := range sub.C {
		mark := "evaluated"
		if b.Pruned {
			mark = "pruned (replayed from cache)"
		}
		users := make([]string, 0, len(b.Rows))
		for _, r := range b.Rows {
			users = append(users, r[0].String())
		}
		fmt.Printf("  snap %-2d %-28s online=%v\n", b.Snap, mark, users)
	}

	// The .views status line (also served over the wire and as
	// per-view /metrics counters).
	for _, v := range db.Views() {
		fmt.Printf("\nview %s [%s]: cursor=%d rows=%d refreshes=%d pruned=%d pushed=%d\n",
			v.Name, v.Mechanism, v.LastSnap, v.Rows, v.Refreshes, v.PrunedRefreshes, v.RowsPushed)
	}

	// The materialized table is a plain table: retrospective questions
	// are now ordinary SQL, no mechanism run needed.
	fmt.Println("\nconcurrent EU sessions per minute:")
	rows, err := conn.Query(
		`SELECT sid, COUNT(*) AS n FROM sessions WHERE region = 'EU' GROUP BY sid`)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows.Rows {
		fmt.Printf("  minute %-2d %d online\n", r[0].Int(), r[1].Int())
	}

	// Dropping the view removes the definition, the result table, and
	// the persisted refresh state, and ends every subscription.
	exec(`DROP RETRO VIEW sessions`)
}
