// Audit: retrospective fact checking over a TPC-H order database — the
// kind of after-the-fact analysis the paper's introduction motivates.
//
// A nightly snapshot is declared while refresh traffic (new orders in,
// old orders archived out) churns the database. Later, an auditor asks
// questions no single snapshot can answer:
//
//  1. For each customer, the maximum number of orders ever pending in
//     one snapshot and their average value (AggregateDataInTable).
//  2. The largest order backlog the system ever carried
//     (AggregateDataInVariable over per-snapshot counts).
//  3. The first snapshot in which a suspicious clerk appears
//     (AggregateDataInVariable with MIN over current_snapshot()).
package main

import (
	"fmt"
	"log"

	"rql/internal/bench"
)

func main() {
	// Build a TPC-H database with 20 nightly snapshots under the
	// paper's UW30 refresh workload (tiny scale for a quick demo).
	env, err := bench.NewEnv(bench.UW30, 20, bench.Config{SF: 0.002})
	if err != nil {
		log.Fatal(err)
	}
	defer env.Close()
	conn := env.Conn

	fmt.Printf("database ready: 20 nightly snapshots, %d archived pages\n\n",
		env.DB.Retro().PagelogPages())

	// 1. Max simultaneous pending orders and their average price, per
	// customer, across all snapshots (§2.3's across-time GROUP BY).
	if _, err := env.R.AggregateDataInTable(conn,
		`SELECT snap_id FROM SnapIds`,
		`SELECT o_custkey, COUNT(*) AS pending, AVG(o_totalprice) AS avg_price
		 FROM orders WHERE o_orderstatus = 'O' GROUP BY o_custkey`,
		"CustomerPeaks", "(pending,MAX):(avg_price,MAX)"); err != nil {
		log.Fatal(err)
	}
	rows, err := conn.Query(`SELECT o_custkey, MAX(pending) AS peak
		FROM CustomerPeaks GROUP BY o_custkey ORDER BY peak DESC, o_custkey LIMIT 5`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top customers by peak pending orders in any snapshot:")
	for _, r := range rows.Rows {
		fmt.Printf("  customer %-6v peak %v\n", r[0], r[1])
	}

	// 2. Largest backlog the system ever carried.
	if _, err := env.R.AggregateDataInVariable(conn,
		`SELECT snap_id FROM SnapIds`,
		`SELECT COUNT(*) FROM orders WHERE o_orderstatus = 'O'`,
		"PeakBacklog", "max"); err != nil {
		log.Fatal(err)
	}
	rows, err = conn.Query(`SELECT * FROM PeakBacklog`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlargest open-order backlog in any snapshot: %v\n", rows.Rows[0][0])

	// 3. When did Clerk#000000007 first handle an order? (A typical
	// claim-checking question formulated long after the fact.)
	if _, err := env.R.AggregateDataInVariable(conn,
		`SELECT snap_id FROM SnapIds`,
		`SELECT DISTINCT current_snapshot() FROM orders WHERE o_clerk = 'Clerk#000000007'`,
		"FirstSeen", "min"); err != nil {
		log.Fatal(err)
	}
	rows, err = conn.Query(`SELECT * FROM FirstSeen`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Clerk#000000007 first appears in snapshot: %v\n", rows.Rows[0][0])

	// The cost breakdown of the last mechanism run, the way the
	// paper's §5 figures report it.
	last := env.R.LastRun()
	tot := last.Total()
	fmt.Printf("\nlast run (%s): %d iterations, io=%v spt=%v eval=%v udf=%v\n",
		last.Mechanism, len(last.Iterations), tot.IOTime, tot.SPTBuild, tot.QueryEval, tot.UDF)
}
