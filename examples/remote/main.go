// Remote: the client/server stack end to end in one process — start an
// rqld server on a random port, connect with the client package, build
// the paper's LoggedIn snapshot set remotely, query one snapshot with
// SELECT AS OF, run CollateData server-side, and read back the server's
// STATS counters.
package main

import (
	"fmt"
	"log"
	"net"

	"rql"
	"rql/client"
	"rql/internal/server"
)

func main() {
	// Server side: an in-memory database served on a random local port.
	db, err := rql.Open(rql.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	if err := db.Conn().EnsureSnapIds(); err != nil {
		log.Fatal(err)
	}
	srv := server.New(db, server.Config{})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(lis) }()
	fmt.Printf("rqld serving on %s\n", lis.Addr())

	// Client side: everything below goes over the wire.
	conn, err := client.Dial(lis.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()

	exec := func(sql string) {
		if err := conn.Exec(sql, nil); err != nil {
			log.Fatalf("%s: %v", sql, err)
		}
	}
	exec(`CREATE TABLE LoggedIn (l_userid TEXT, l_time TEXT, l_country TEXT)`)
	exec(`INSERT INTO LoggedIn VALUES
		('UserA', '2008-11-09 13:23:44', 'USA'),
		('UserB', '2008-11-09 15:45:21', 'UK'),
		('UserC', '2008-11-09 15:45:21', 'USA')`)
	s1, err := conn.DeclareSnapshot("2008-11-09")
	if err != nil {
		log.Fatal(err)
	}
	exec(`DELETE FROM LoggedIn WHERE l_userid = 'UserA'`)
	if _, err := conn.DeclareSnapshot("2008-11-10"); err != nil {
		log.Fatal(err)
	}
	exec(`INSERT INTO LoggedIn VALUES ('UserD', '2008-11-11 10:08:04', 'UK')`)
	if _, err := conn.DeclareSnapshot("2008-11-11"); err != nil {
		log.Fatal(err)
	}

	show := func(title, sql string) {
		rows, err := conn.Query(sql)
		if err != nil {
			log.Fatalf("%s: %v", sql, err)
		}
		fmt.Printf("\n%s\n  %s\n", title, sql)
		for _, r := range rows.Rows {
			fmt.Print("  ")
			for i, v := range r {
				if i > 0 {
					fmt.Print(" | ")
				}
				fmt.Print(v)
			}
			fmt.Println()
		}
	}
	show("Who was logged in at snapshot 1 (remote AS OF)?",
		fmt.Sprintf(`SELECT AS OF %d l_userid FROM LoggedIn`, s1))

	// The mechanism runs entirely server-side; only its statistics and
	// (on demand) the result table cross the wire.
	run, err := conn.CollateData(
		`SELECT snap_id FROM SnapIds`,
		`SELECT DISTINCT l_userid, current_snapshot() AS sid FROM LoggedIn`,
		"Result")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nCollateData ran %d iterations server-side\n", len(run.Iterations))
	show("Every user with the snapshots they appear in",
		`SELECT l_userid, sid FROM Result ORDER BY l_userid, sid`)

	ss, err := conn.ServerStats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nserver stats: %d queries, %d rows streamed, %d snapshots, %d commits\n",
		ss.QueriesServed, ss.RowsStreamed, ss.Snapshots, ss.Commits)

	srv.Shutdown()
	if err := <-served; err != server.ErrServerClosed {
		log.Fatal(err)
	}
}
