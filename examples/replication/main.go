// Replication: snapshot-shipping from one writer to retrospective query
// replicas, end to end in one process — start a primary rqld and two
// replica rqld nodes on random ports, write a snapshot history through
// the routing cluster client, watch the replicas bootstrap and tail the
// stream, run AS OF reads and a mechanism routed to the replicas, and
// show a replica rejecting a write with a redirect to the primary.
package main

import (
	"fmt"
	"log"
	"net"

	"rql"
	"rql/client"
	"rql/internal/repl"
	"rql/internal/server"
)

// node bundles one rqld "process": database, server, listener.
type node struct {
	db   *rql.DB
	srv  *server.Server
	addr string
}

func serve(db *rql.DB) (*node, error) {
	srv := server.New(db, server.Config{})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go srv.Serve(lis)
	return &node{db: db, srv: srv, addr: lis.Addr().String()}, nil
}

func main() {
	// The primary: the single writer. Equivalent to
	//   rqld -listen 127.0.0.1:7427
	pdb, err := rql.Open(rql.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer pdb.Close()
	primary := repl.NewPrimary(pdb, repl.PrimaryConfig{})
	defer primary.Close()
	pn, err := serve(pdb)
	if err != nil {
		log.Fatal(err)
	}
	pn.srv.SetPrimary(primary)
	primary.SetAddr(pn.addr)
	fmt.Printf("primary serving on %s\n", pn.addr)

	// Two replicas. Equivalent to
	//   rqld -listen :7428 -replica-of 127.0.0.1:7427
	// Each opens a replication stream on the primary, receives a
	// consistent bootstrap (catalog, pages, Pagelog, Maplog), then tails
	// one delta per COMMIT WITH SNAPSHOT, applied atomically so the
	// replica's horizon only ever moves between complete snapshots.
	var raddrs []string
	for i := 0; i < 2; i++ {
		rdb, err := rql.Open(rql.Options{})
		if err != nil {
			log.Fatal(err)
		}
		defer rdb.Close()
		rep, err := repl.NewReplica(rdb, repl.ReplicaConfig{
			Primary: pn.addr,
			ID:      fmt.Sprintf("replica-%d", i+1),
		})
		if err != nil {
			log.Fatal(err)
		}
		rep.Start()
		defer rep.Close()
		rn, err := serve(rdb)
		if err != nil {
			log.Fatal(err)
		}
		rn.srv.SetReplica(rep)
		raddrs = append(raddrs, rn.addr)
		fmt.Printf("replica %d serving on %s\n", i+1, rn.addr)
	}

	// The cluster client routes by statement: writes, transactions and
	// snapshot declarations go to the primary; SELECT/EXPLAIN, AS OF
	// reads and the four mechanisms go to a replica whose applied
	// horizon covers the needed snapshot (waiting briefly for a lagging
	// one, failing over to the primary if none catches up).
	cl, err := client.OpenCluster(client.ClusterConfig{
		Primary:  pn.addr,
		Replicas: raddrs,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	if err := cl.EnsureSnapIds(); err != nil {
		log.Fatal(err)
	}

	// A small history: one snapshot per day of logins.
	exec := func(sql string) {
		if err := cl.Exec(sql, nil); err != nil {
			log.Fatalf("%s: %v", sql, err)
		}
	}
	snap := func(label string) uint64 {
		id, err := cl.DeclareSnapshot(label) // declares and records in SnapIds
		if err != nil {
			log.Fatal(err)
		}
		return id
	}
	exec(`CREATE TABLE LoggedIn (l_userid TEXT, l_time TEXT, l_country TEXT)`)
	exec(`INSERT INTO LoggedIn VALUES
		('UserA', '2008-11-09 13:23:44', 'USA'),
		('UserB', '2008-11-09 15:45:21', 'UK'),
		('UserC', '2008-11-09 15:45:21', 'USA')`)
	s1 := snap("2008-11-09")
	exec(`DELETE FROM LoggedIn WHERE l_userid = 'UserA'`)
	snap("2008-11-10")
	exec(`INSERT INTO LoggedIn VALUES ('UserD', '2008-11-11 09:01:07', 'DE')`)
	s3 := snap("2008-11-11")

	// An AS OF read through the cluster: the client waits until some
	// replica's horizon covers s1, then serves the read there — the
	// primary is not touched.
	var users int64
	err = cl.ExecAsOf(`SELECT COUNT(*) FROM LoggedIn`, s1,
		func(_ []string, row []rql.Value) error {
			users = row[0].Int()
			return nil
		})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AS OF snapshot %d (served by a replica): %d users logged in\n", s1, users)

	// A full retrospective mechanism, also served by a replica: collate
	// the per-country login counts across every snapshot.
	if _, err := cl.AggregateDataInTable(
		`SELECT snap_id FROM SnapIds`,
		`SELECT l_country, COUNT(*) AS logins FROM LoggedIn`,
		"CountryLogins", "(logins,MAX)"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AggregateDataInTable over snapshots %d..%d ran on a replica\n", s1, s3)

	// Writes to a replica are rejected with a redirect naming the
	// primary — clients that dial a replica directly can follow it.
	rc, err := client.Dial(raddrs[0])
	if err != nil {
		log.Fatal(err)
	}
	defer rc.Close()
	err = rc.Exec(`INSERT INTO LoggedIn VALUES ('UserE', 'now', 'FR')`, nil)
	if addr, ok := repl.IsRedirect(err); ok {
		fmt.Printf("replica rejected the write; redirect to primary at %s\n", addr)
	} else {
		log.Fatalf("expected a redirect, got %v", err)
	}

	// The primary tracks each replica's acknowledged snapshot and lag;
	// rqlshell exposes the same numbers via the .replicas command.
	st, err := cl.Primary().ReplStats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("primary horizon %d; %d replicas attached:\n", st.Horizon, len(st.Replicas))
	for _, r := range st.Replicas {
		fmt.Printf("  %-10s acked snapshot %d, %d bytes shipped\n", r.ID, r.AckedSnap, r.SentBytes)
	}
}
