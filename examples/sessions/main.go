// Sessions: reconstructing record lifetimes with
// CollateDataIntoIntervals (§2.4) — the mechanism that converts
// page-level snapshots into the start/end interval representation
// temporal databases use.
//
// A chat service keeps only the currently-online users in a table and
// declares a snapshot every "minute". Later, an analyst reconstructs
// every user's sessions — including users who disconnected and came
// back — from the snapshot history alone.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"rql"
)

func main() {
	db, err := rql.Open(rql.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	conn := db.Conn()

	if err := conn.Exec(`CREATE TABLE online (user TEXT, device TEXT)`, nil); err != nil {
		log.Fatal(err)
	}

	// Simulated presence traffic: each user flips online/offline with
	// some probability per tick; a snapshot is declared every tick.
	users := []string{"ann", "ben", "cal", "dee", "eve"}
	online := map[string]bool{}
	rng := rand.New(rand.NewSource(11))
	const ticks = 12
	for tick := 1; tick <= ticks; tick++ {
		if err := conn.Exec(`BEGIN`, nil); err != nil {
			log.Fatal(err)
		}
		for _, u := range users {
			switch {
			case !online[u] && rng.Float64() < 0.45: // connect
				online[u] = true
				if err := conn.Exec(`INSERT INTO online VALUES (?, ?)`, nil,
					rql.Text(u), rql.Text("mobile")); err != nil {
					log.Fatal(err)
				}
			case online[u] && rng.Float64() < 0.25: // disconnect
				online[u] = false
				if err := conn.Exec(`DELETE FROM online WHERE user = ?`, nil, rql.Text(u)); err != nil {
					log.Fatal(err)
				}
			}
		}
		id, err := conn.CommitWithSnapshot()
		if err != nil {
			log.Fatal(err)
		}
		if err := conn.EnsureSnapIds(); err != nil {
			log.Fatal(err)
		}
		if err := conn.Exec(`INSERT INTO SnapIds (snap_id, snap_ts, label) VALUES (?, ?, ?)`,
			nil, rql.Int(int64(id)), rql.Text(fmt.Sprintf("minute %d", tick)), rql.Text("")); err != nil {
			log.Fatal(err)
		}
	}

	// Reconstruct session intervals from the snapshots.
	stats, err := conn.CollateDataIntoIntervals(
		`SELECT snap_id FROM SnapIds`,
		`SELECT user FROM online`,
		"Sessions")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d snapshots -> %d session intervals (result: %d bytes data, %d bytes index)\n\n",
		ticks, stats.ResultRows, stats.ResultDataBytes, stats.ResultIndexBytes)
	rows, err := conn.Query(
		`SELECT user, start_snapshot, end_snapshot,
		        end_snapshot - start_snapshot + 1 AS minutes
		 FROM Sessions ORDER BY user, start_snapshot`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("user  session             minutes")
	for _, r := range rows.Rows {
		fmt.Printf("%-5s [min %2v .. min %2v]  %v\n", r[0], r[1], r[2], r[3])
	}

	// Cross-check one user against raw per-snapshot membership.
	fmt.Println("\nraw presence of 'ann' per snapshot (CollateData):")
	if _, err := conn.CollateData(
		`SELECT snap_id FROM SnapIds`,
		`SELECT current_snapshot() AS snap FROM online WHERE user = 'ann'`,
		"AnnRaw"); err != nil {
		log.Fatal(err)
	}
	rows, err = conn.Query(`SELECT snap FROM AnnRaw ORDER BY snap`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("  online at minutes:")
	for _, r := range rows.Rows {
		fmt.Printf(" %v", r[0])
	}
	fmt.Println()
}
