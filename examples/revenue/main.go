// Revenue: a CPU-intensive retrospective analytics pass — the paper's
// Qq_cpu join (lineitem ⋈ part) evaluated over every snapshot, showing
// (a) the automatic transient index the engine builds for un-indexed
// joins (SQLite's "automatic covering index", Figure 9), and (b) how a
// native index changes the cost profile.
package main

import (
	"fmt"
	"log"

	"rql/internal/bench"
)

const revenueQq = `SELECT SUM(l_extendedprice) AS revenue
	FROM lineitem, part
	WHERE p_partkey = l_partkey AND p_type = 'STANDARD POLISHED TIN'`

func main() {
	env, err := bench.NewEnv(bench.UW30, 12, bench.Config{SF: 0.002})
	if err != nil {
		log.Fatal(err)
	}
	defer env.Close()
	conn := env.Conn

	// Average revenue from STANDARD POLISHED TIN parts across all
	// snapshots, without any native index: every iteration builds a
	// transient index over lineitem.
	run, err := env.R.AggregateDataInVariable(conn,
		`SELECT snap_id FROM SnapIds`, revenueQq, "AvgRevenue", "avg")
	if err != nil {
		log.Fatal(err)
	}
	rows, err := conn.Query(`SELECT * FROM AvgRevenue`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("average per-snapshot revenue (no index): %v\n", rows.Rows[0][0])
	tot := run.Total()
	fmt.Printf("  cost: io=%v spt=%v transient_index=%v eval=%v over %d iterations\n",
		tot.IOTime, tot.SPTBuild, tot.IndexCreation, tot.QueryEval, len(run.Iterations))

	// Build the native index the paper's §5.2 "w/ index" variant uses;
	// snapshots declared afterwards carry it.
	if err := conn.Exec(`CREATE INDEX lineitem_partkey ON lineitem (l_partkey)`, nil); err != nil {
		log.Fatal(err)
	}
	if err := env.Extend(12); err != nil {
		log.Fatal(err)
	}

	run, err = env.R.AggregateDataInVariable(conn,
		fmt.Sprintf(`SELECT snap_id FROM SnapIds WHERE snap_id > %d`, env.Last-12),
		revenueQq, "AvgRevenueIdx", "avg")
	if err != nil {
		log.Fatal(err)
	}
	rows, err = conn.Query(`SELECT * FROM AvgRevenueIdx`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\naverage per-snapshot revenue (native index): %v\n", rows.Rows[0][0])
	tot = run.Total()
	fmt.Printf("  cost: io=%v spt=%v transient_index=%v eval=%v over %d iterations\n",
		tot.IOTime, tot.SPTBuild, tot.IndexCreation, tot.QueryEval, len(run.Iterations))
	fmt.Println("\nnote: the transient-index bar disappears once the join column has a",
		"\nnative index captured in the snapshots (paper Figure 9).")
}
