// Group commit: the batched, pipelined write path for concurrent
// sessions.
//
// The log is single-writer, but writers no longer serialize around a
// transaction-lifetime lock: BEGIN pins a snapshot-isolation baseline
// and stages the write set privately, COMMIT enqueues onto a commit
// queue, and a leader drains whole batches — conflict detection,
// consecutive LSNs, ONE device flush per group. This walkthrough shows
// both faces of that design:
//
//  1. Throughput: on a sleeping device (1ms per flush), 8 concurrent
//     writers commit several times faster with group commit on,
//     because a group of commits shares one flush.
//  2. Isolation: two explicit transactions that write the same page
//     race at COMMIT; the first committer wins and the loser gets
//     rql.ErrWriteConflict to retry on a fresh snapshot.
package main

import (
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"rql"
)

const (
	writers = 8
	ops     = 20
)

// run times `writers` concurrent sessions doing autocommit INSERTs
// into private tables (disjoint pages — no conflicts, so the
// comparison isolates flush batching).
func run(db *rql.DB, grouped bool) time.Duration {
	db.SetGroupCommit(grouped)
	setup := db.Conn()
	tag := "serial"
	if grouped {
		tag = "grouped"
	}
	for w := 0; w < writers; w++ {
		if err := setup.Exec(fmt.Sprintf(`CREATE TABLE %s_%d (i INTEGER)`, tag, w), nil); err != nil {
			log.Fatal(err)
		}
	}
	db.ResetStats()
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			conn := db.Conn()
			for i := 0; i < ops; i++ {
				if err := conn.Exec(fmt.Sprintf(`INSERT INTO %s_%d VALUES (%d)`, tag, w, i), nil); err != nil {
					log.Fatal(err)
				}
			}
		}(w)
	}
	wg.Wait()
	return time.Since(start)
}

func main() {
	// SleepOnRead turns the modeled device latency into wall time, so a
	// commit group's flush genuinely costs 1ms — the regime where
	// batching flushes is visible on the clock.
	db, err := rql.Open(rql.Options{
		SleepOnRead:          true,
		SimulatedReadLatency: time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// --- 1. Throughput: serial vs grouped commits -------------------
	serialWall := run(db, false)
	ss := db.StorageStats()
	fmt.Printf("serial : %3d commits in %8s — %d flushes (one per commit), %.0f commits/s\n",
		ss.Commits, serialWall.Round(time.Millisecond),
		db.RetroStats().DeviceFlushes, float64(ss.Commits)/serialWall.Seconds())

	groupedWall := run(db, true)
	ss = db.StorageStats()
	rs := db.RetroStats()
	fmt.Printf("grouped: %3d commits in %8s — %d flushes (one per GROUP, mean size %.1f), %.0f commits/s\n",
		ss.Commits, groupedWall.Round(time.Millisecond),
		rs.DeviceFlushes, float64(ss.Commits)/float64(ss.Groups),
		float64(ss.Commits)/groupedWall.Seconds())
	fmt.Printf("speedup: %.1fx at %d writers; queue wait %s total\n\n",
		float64(serialWall)/float64(groupedWall), writers,
		time.Duration(ss.QueueWaitNS).Round(time.Microsecond))

	// --- 2. Isolation: first committer wins -------------------------
	// Two transactions stage against the same baseline and write the
	// same table, hence the same leaf page. Neither blocks the other
	// while running; the race is settled at COMMIT.
	c1, c2 := db.Conn(), db.Conn()
	if err := c1.Exec(`CREATE TABLE balance (acct INTEGER, cents INTEGER)`, nil); err != nil {
		log.Fatal(err)
	}
	if err := c1.Begin(); err != nil {
		log.Fatal(err)
	}
	if err := c2.Begin(); err != nil {
		log.Fatal(err) // BEGIN takes no lock — this does not block on c1
	}
	mustExec(c1, `INSERT INTO balance VALUES (1, 100)`)
	mustExec(c2, `INSERT INTO balance VALUES (2, 200)`)
	if err := c1.Commit(); err != nil {
		log.Fatal(err)
	}
	err = c2.Commit()
	fmt.Printf("first COMMIT: ok; second COMMIT: %v (conflict aborted: %d)\n",
		err, db.StorageStats().Conflicts)
	if !errors.Is(err, rql.ErrWriteConflict) {
		log.Fatalf("expected rql.ErrWriteConflict, got %v", err)
	}

	// The loser retries on a fresh snapshot — its baseline now includes
	// the winner's commit, so the same write succeeds.
	if err := c2.Begin(); err != nil {
		log.Fatal(err)
	}
	mustExec(c2, `INSERT INTO balance VALUES (2, 200)`)
	if err := c2.Commit(); err != nil {
		log.Fatal(err)
	}
	rows := 0
	err = c1.Exec(`SELECT acct FROM balance`, func(cols []string, row []rql.Value) error {
		rows++
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after retry: %d rows — both writers landed exactly once\n", rows)
}

func mustExec(c *rql.Conn, sql string) {
	if err := c.Exec(sql, nil); err != nil {
		log.Fatal(err)
	}
}
