// Command rqlbench regenerates the paper's evaluation (§5): every
// figure and table, printed as aligned text tables in the paper's own
// terms (ratio C, per-iteration cost breakdowns, result footprints).
//
// Usage:
//
//	rqlbench -list                 # show available experiments
//	rqlbench -exp fig6             # run one experiment
//	rqlbench -all                  # run everything (paper order)
//	rqlbench -all -sf 0.02         # larger scale factor
//	rqlbench -all -quick           # fast, shrunken sweeps
//	rqlbench -exp fig6 -trace-out=run.json   # record spans for Perfetto
//	rqlbench -quick -trace-check   # fail if enabled tracing costs > 5%
//
// Absolute numbers are not comparable to the paper's testbed (see
// EXPERIMENTS.md); the shapes are.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rql/internal/bench"
	"rql/internal/obs"
)

func main() {
	var (
		list       = flag.Bool("list", false, "list experiments and exit")
		exp        = flag.String("exp", "", "run a single experiment by name (e.g. fig6)")
		all        = flag.Bool("all", false, "run every experiment")
		sf         = flag.Float64("sf", 0.01, "TPC-H scale factor (1.0 = 1.5M orders)")
		quick      = flag.Bool("quick", false, "shrink sweeps for a fast pass")
		latency    = flag.Duration("latency", 0, "modeled per-Pagelog-read latency (default 100µs)")
		seed       = flag.Int64("seed", 0, "data generation seed")
		bjson      = flag.String("benchjson", "", "run the batch experiment and append its machine-readable report to the runs file at this path")
		compare    = flag.String("compare", "", "diff the two newest runs in the runs file at this path and exit")
		traceOut   = flag.String("trace-out", "", "record spans during the run and write them as Chrome trace-event JSON to this file")
		traceCheck = flag.Bool("trace-check", false, "measure enabled-tracing overhead on the smoke workload and fail above the budget")
	)
	flag.Parse()

	if *compare != "" {
		if err := bench.Compare(*compare, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "rqlbench:", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		fmt.Println("experiments:")
		for _, e := range bench.Experiments {
			fmt.Printf("  %-8s %s\n", e.Name, e.Title)
		}
		return
	}

	cfg := bench.Config{SF: *sf, Quick: *quick, ReadLatency: *latency, Seed: *seed}
	r := bench.NewRunner(cfg, os.Stdout)
	defer r.Close()

	if *traceOut != "" {
		obs.SetTracing(true)
		defer writeTrace(*traceOut)
	}

	start := time.Now()
	switch {
	case *traceCheck:
		if err := r.TracingCheck(); err != nil {
			fmt.Fprintln(os.Stderr, "rqlbench:", err)
			os.Exit(1)
		}
	case *bjson != "":
		rep, err := r.BatchReport()
		if err != nil {
			fmt.Fprintln(os.Stderr, "rqlbench:", err)
			os.Exit(1)
		}
		flags := map[string]bool{
			"quick":                  *quick,
			"prefetch":               false,
			"delta_prune_side":       true,
			"legacy_and_batch_prune": false,
			"pipelined_side":         true,
		}
		if err := bench.AppendRun(*bjson, rep, flags); err != nil {
			fmt.Fprintln(os.Stderr, "rqlbench:", err)
			os.Exit(1)
		}
		fmt.Printf("appended run to %s\n", *bjson)
	case *all:
		if err := r.RunAll(); err != nil {
			fmt.Fprintln(os.Stderr, "rqlbench:", err)
			os.Exit(1)
		}
	case *exp != "":
		e := bench.FindExperiment(*exp)
		if e == nil {
			fmt.Fprintf(os.Stderr, "rqlbench: unknown experiment %q (try -list)\n", *exp)
			os.Exit(2)
		}
		if err := e.Run(r); err != nil {
			fmt.Fprintln(os.Stderr, "rqlbench:", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
	fmt.Printf("\n[%s total]\n", time.Since(start).Round(time.Millisecond))
}

// writeTrace dumps the recorder ring as Chrome trace-event JSON
// (chrome://tracing, https://ui.perfetto.dev).
func writeTrace(path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rqlbench: trace-out:", err)
		return
	}
	defer f.Close()
	if err := obs.WriteTraceEvents(f, obs.Spans()); err != nil {
		fmt.Fprintln(os.Stderr, "rqlbench: trace-out:", err)
		return
	}
	fmt.Printf("wrote trace to %s\n", path)
}
