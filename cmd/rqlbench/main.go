// Command rqlbench regenerates the paper's evaluation (§5): every
// figure and table, printed as aligned text tables in the paper's own
// terms (ratio C, per-iteration cost breakdowns, result footprints).
//
// Usage:
//
//	rqlbench -list                 # show available experiments
//	rqlbench -exp fig6             # run one experiment
//	rqlbench -all                  # run everything (paper order)
//	rqlbench -all -sf 0.02         # larger scale factor
//	rqlbench -all -quick           # fast, shrunken sweeps
//	rqlbench -exp fig6 -trace-out=run.json   # record spans for Perfetto
//	rqlbench -quick -trace-check   # fail if enabled tracing costs > 5%
//
//	# capture one stitched cross-node trace from a live cluster
//	rqlbench -cluster "primary:4048,replica:4049" -trace-out=cluster.json
//
// Absolute numbers are not comparable to the paper's testbed (see
// EXPERIMENTS.md); the shapes are.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"rql/client"
	"rql/internal/bench"
	"rql/internal/obs"
)

func main() {
	var (
		list       = flag.Bool("list", false, "list experiments and exit")
		exp        = flag.String("exp", "", "run a single experiment by name (e.g. fig6)")
		all        = flag.Bool("all", false, "run every experiment")
		sf         = flag.Float64("sf", 0.01, "TPC-H scale factor (1.0 = 1.5M orders)")
		quick      = flag.Bool("quick", false, "shrink sweeps for a fast pass")
		latency    = flag.Duration("latency", 0, "modeled per-Pagelog-read latency (default 100µs)")
		seed       = flag.Int64("seed", 0, "data generation seed")
		bjson      = flag.String("benchjson", "", "run the batch experiment and append its machine-readable report to the runs file at this path")
		compare    = flag.String("compare", "", "diff the two newest runs in the runs file at this path and exit")
		traceOut   = flag.String("trace-out", "", "record spans during the run and write them as Chrome trace-event JSON to this file")
		traceCheck = flag.Bool("trace-check", false, "measure enabled-tracing overhead on the smoke workload and fail above the budget")
		clusterStr = flag.String("cluster", "", "comma-separated rqld addresses (primary,replica,...): run a small retrospective workload against the cluster and write the stitched cross-node trace to -trace-out")
	)
	flag.Parse()

	if *clusterStr != "" {
		if *traceOut == "" {
			fmt.Fprintln(os.Stderr, "rqlbench: -cluster needs -trace-out for the stitched trace file")
			os.Exit(2)
		}
		if err := clusterTrace(*clusterStr, *traceOut); err != nil {
			fmt.Fprintln(os.Stderr, "rqlbench:", err)
			os.Exit(1)
		}
		return
	}

	if *compare != "" {
		if err := bench.Compare(*compare, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "rqlbench:", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		fmt.Println("experiments:")
		for _, e := range bench.Experiments {
			fmt.Printf("  %-8s %s\n", e.Name, e.Title)
		}
		return
	}

	cfg := bench.Config{SF: *sf, Quick: *quick, ReadLatency: *latency, Seed: *seed}
	r := bench.NewRunner(cfg, os.Stdout)
	defer r.Close()

	if *traceOut != "" {
		obs.SetTracing(true)
		defer writeTrace(*traceOut)
	}

	start := time.Now()
	switch {
	case *traceCheck:
		if err := r.TracingCheck(); err != nil {
			fmt.Fprintln(os.Stderr, "rqlbench:", err)
			os.Exit(1)
		}
	case *bjson != "":
		rep, err := r.BatchReport()
		if err != nil {
			fmt.Fprintln(os.Stderr, "rqlbench:", err)
			os.Exit(1)
		}
		flags := map[string]bool{
			"quick":                  *quick,
			"prefetch":               false,
			"delta_prune_side":       true,
			"legacy_and_batch_prune": false,
			"pipelined_side":         true,
		}
		if err := bench.AppendRun(*bjson, rep, flags); err != nil {
			fmt.Fprintln(os.Stderr, "rqlbench:", err)
			os.Exit(1)
		}
		fmt.Printf("appended run to %s\n", *bjson)
	case *all:
		if err := r.RunAll(); err != nil {
			fmt.Fprintln(os.Stderr, "rqlbench:", err)
			os.Exit(1)
		}
	case *exp != "":
		e := bench.FindExperiment(*exp)
		if e == nil {
			fmt.Fprintf(os.Stderr, "rqlbench: unknown experiment %q (try -list)\n", *exp)
			os.Exit(2)
		}
		if err := e.Run(r); err != nil {
			fmt.Fprintln(os.Stderr, "rqlbench:", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
	fmt.Printf("\n[%s total]\n", time.Since(start).Round(time.Millisecond))
}

// clusterTrace runs one small retrospective workload against a live
// cluster with tracing on — writes on the primary, a mechanism routed
// through the cluster so every leg shares one logical trace — then
// fetches that trace's spans from every member and writes them as one
// stitched Perfetto file with a process lane per node.
func clusterTrace(spec, path string) error {
	addrs := strings.Split(spec, ",")
	for i := range addrs {
		addrs[i] = strings.TrimSpace(addrs[i])
	}
	cl, err := client.OpenCluster(client.ClusterConfig{
		Primary:  addrs[0],
		Replicas: addrs[1:],
	})
	if err != nil {
		return err
	}
	defer cl.Close()

	if err := cl.SetTracing(true); err != nil {
		return err
	}
	defer cl.SetTracing(false)

	exec := func(sqlText string) error { return cl.Exec(sqlText, nil) }
	if err := cl.EnsureSnapIds(); err != nil {
		return err
	}
	for _, q := range []string{
		`DROP TABLE IF EXISTS rqlbench_trace`,
		`CREATE TABLE rqlbench_trace (k INTEGER, v INTEGER)`,
		`INSERT INTO rqlbench_trace VALUES (1, 10), (2, 20), (3, 30), (4, 40)`,
	} {
		if err := exec(q); err != nil {
			return fmt.Errorf("%s: %w", q, err)
		}
	}
	s1, err := cl.DeclareSnapshot("rqlbench-trace-1")
	if err != nil {
		return err
	}
	if err := exec(`UPDATE rqlbench_trace SET v = v + 1 WHERE k < 3`); err != nil {
		return err
	}
	s2, err := cl.DeclareSnapshot("rqlbench-trace-2")
	if err != nil {
		return err
	}

	// The mechanism leg routes to a replica when one covers the
	// horizon; the cluster pins the same trace id on every member it
	// touches, so the spans below stitch into one tree. The result
	// table lives in the serving node's side store, which a primary-
	// routed DROP can't reach — a unique name keeps reruns against a
	// long-lived cluster from colliding with an earlier run's table.
	qs := fmt.Sprintf(`SELECT snap_id FROM SnapIds WHERE snap_id >= %d AND snap_id <= %d`, s1, s2)
	run, err := cl.CollateData(qs,
		`SELECT k, current_snapshot() AS sid FROM rqlbench_trace`,
		fmt.Sprintf("rqlbench_trace_result_%d", time.Now().UnixNano()))
	if err != nil {
		return err
	}

	id := cl.LastTrace()
	nodes, err := cl.TraceSpans(id)
	if err != nil {
		return err
	}
	stitched := make([]obs.NodeSpans, 0, len(nodes))
	total := 0
	for _, n := range nodes {
		if len(n.Spans) == 0 {
			continue
		}
		stitched = append(stitched, obs.NodeSpans{Node: n.Node, Spans: spansFromWire(n.Spans)})
		total += len(n.Spans)
	}
	if total == 0 {
		return fmt.Errorf("trace %#x left no spans on any member (is tracing enabled server-side?)", id)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := obs.WriteStitchedTraceEvents(f, stitched); err != nil {
		return err
	}

	fmt.Printf("mechanism %s over %d snapshots, trace %#x:\n", run.Mechanism, len(run.Iterations), id)
	for _, n := range stitched {
		fmt.Printf("  %-24s %d spans\n", n.Node, len(n.Spans))
	}
	fmt.Printf("wrote stitched trace to %s\n", path)
	return nil
}

// spansFromWire converts wire spans to recorder spans for export.
func spansFromWire(ws []client.Span) []obs.Span {
	out := make([]obs.Span, len(ws))
	for i, w := range ws {
		s := obs.Span{
			Trace: w.Trace, ID: w.ID, Parent: w.Parent,
			Name: w.Name, Start: w.Start, Duration: w.Duration,
		}
		for _, a := range w.Attrs {
			s.Attrs = append(s.Attrs, obs.Attr{Key: a.Key, Str: a.Str, Int: a.Int, IsStr: a.IsStr})
		}
		out[i] = s
	}
	return out
}

// writeTrace dumps the recorder ring as Chrome trace-event JSON
// (chrome://tracing, https://ui.perfetto.dev).
func writeTrace(path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rqlbench: trace-out:", err)
		return
	}
	defer f.Close()
	if err := obs.WriteTraceEvents(f, obs.Spans()); err != nil {
		fmt.Fprintln(os.Stderr, "rqlbench: trace-out:", err)
		return
	}
	fmt.Printf("wrote trace to %s\n", path)
}
