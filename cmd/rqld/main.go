// Command rqld serves an RQL database over TCP with the rqld wire
// protocol. Clients (the client package, or rqlshell -connect) get
// per-session connections with the full SQL surface, snapshot
// declaration, AS OF reads, the four RQL mechanisms, and a STATS
// request exposing server and snapshot-system counters.
//
//	rqld -addr localhost:7427 -pagelog /tmp/pagelog.bin
//
// With -debug-addr an HTTP listener exposes /metrics (Prometheus
// text exposition), /vars (the same counters in plain name/value
// form), /timeline (the telemetry sampler's ring as JSON), /traces
// (the span recorder's ring as Chrome trace-event JSON,
// Perfetto-loadable), /slow (the slow-query log) and net/http/pprof;
// -trace starts with the span recorder on, -slow-threshold arms the
// slow-query log, and -timeline-period tunes the telemetry sampler.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: it stops
// accepting, drains in-flight queries, then closes the database.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rql"
	"rql/internal/repl"
	"rql/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", server.DefaultAddr, "TCP listen address")
		pagelog     = flag.String("pagelog", "", "back the Pagelog with a file (empty = in memory)")
		cachePages  = flag.Int("cache-pages", 0, "snapshot page cache capacity in pages (0 = default 16384, negative disables)")
		readLatency = flag.Duration("read-latency", 0, "simulated per-Pagelog-read latency (0 = none)")
		bandwidth   = flag.Int64("device-bandwidth", 0, "simulated device bandwidth in bytes/sec (0 = infinitely fast bus)")
		skipFactor  = flag.Int("skip-factor", 0, "Skippy skip-merge fanout (0 = default 4)")
		compact     = flag.Bool("compact", false, "enable the background Pagelog compactor (tiered archive)")
		segPages    = flag.Int("segment-pages", 0, "pages per sealed segment when compaction is on (0 = default 1024)")
		minTail     = flag.Int("min-tail-pages", 0, "unsealed tail pages the compactor leaves hot (0 = default 1024)")
		reqTimeout  = flag.Duration("request-timeout", 30*time.Second, "per-request deadline")
		idleTimeout = flag.Duration("idle-timeout", 5*time.Minute, "close sessions idle longer than this")
		drain       = flag.Duration("drain-timeout", 5*time.Second, "graceful-shutdown drain bound")
		debugAddr   = flag.String("debug-addr", "", "HTTP debug listener (/metrics, /traces, /slow, pprof); empty disables")
		trace       = flag.Bool("trace", false, "start with the span recorder enabled")
		slowThresh  = flag.Duration("slow-threshold", 0, "log queries slower than this (0 disables the slow-query log)")
		tlPeriod    = flag.Duration("timeline-period", 0, "telemetry timeline sampling period (0 = default 1s, negative disables)")
		replicaOf   = flag.String("replica-of", "", "run as a read replica of the primary rqld at this address")
		replicaID   = flag.String("replica-id", "", "replica identity reported to the primary (default host:pid)")
		replRetain  = flag.Int("repl-retain", 0, "snapshots of replication history the primary keeps for resume (0 = default)")
	)
	flag.Parse()

	rql.SetTracing(*trace)
	rql.SetSlowQueryThreshold(*slowThresh)

	db, err := rql.Open(rql.Options{
		PagelogPath:          *pagelog,
		CachePages:           *cachePages,
		SimulatedReadLatency: *readLatency,
		SimulatedBandwidth:   *bandwidth,
		SkipFactor:           *skipFactor,
		Compaction: rql.CompactionOptions{
			Enabled:      *compact,
			SegmentPages: *segPages,
			MinTailPages: *minTail,
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "rqld:", err)
		os.Exit(1)
	}

	// SnapIds exists up front so remote SELECT ... FROM SnapIds and the
	// mechanism Qs queries work before the first snapshot declaration.
	conn := db.Conn()
	if err := conn.EnsureSnapIds(); err != nil {
		fmt.Fprintln(os.Stderr, "rqld:", err)
		os.Exit(1)
	}

	srv := server.New(db, server.Config{
		Addr:           *addr,
		RequestTimeout: *reqTimeout,
		IdleTimeout:    *idleTimeout,
		DrainTimeout:   *drain,
		TimelinePeriod: *tlPeriod,
	})

	// Replication role. A replica tails the primary's snapshot stream
	// and rejects writes; any other rqld is a potential primary and
	// accepts subscriber streams (chaining replicas is not supported —
	// replicated applies bypass the commit observer by design).
	var replica *repl.Replica
	var primary *repl.Primary
	if *replicaOf != "" {
		id := *replicaID
		if id == "" {
			host, _ := os.Hostname()
			id = fmt.Sprintf("%s:%d", host, os.Getpid())
		}
		replica, err = repl.NewReplica(db, repl.ReplicaConfig{Primary: *replicaOf, ID: id})
		if err != nil {
			fmt.Fprintln(os.Stderr, "rqld:", err)
			os.Exit(1)
		}
		replica.Start()
		srv.SetReplica(replica)
		fmt.Printf("rqld: replica of %s (id %s)\n", *replicaOf, id)
	} else {
		primary = repl.NewPrimary(db, repl.PrimaryConfig{RetainSnapshots: *replRetain})
		srv.SetPrimary(primary)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe() }()

	if *debugAddr != "" {
		go func() {
			fmt.Printf("rqld: debug endpoint on http://%s (/metrics /traces /slow /debug/pprof)\n", *debugAddr)
			if err := srv.ServeDebug(*debugAddr); err != nil {
				fmt.Fprintln(os.Stderr, "rqld: debug listener:", err)
			}
		}()
	}

	// Give the listener a moment to bind so the banner shows the
	// resolved address (":0" picks a port).
	for i := 0; i < 100 && srv.Addr() == ""; i++ {
		time.Sleep(10 * time.Millisecond)
	}
	if a := srv.Addr(); a != "" {
		fmt.Printf("rqld: serving on %s\n", a)
		if primary != nil {
			primary.SetAddr(a) // redirect target replicas report to clients
		}
	}

	select {
	case err := <-done:
		if err != nil && err != server.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "rqld:", err)
			os.Exit(1)
		}
	case s := <-sig:
		fmt.Printf("rqld: %v, draining...\n", s)
		srv.Shutdown()
		<-done
	}

	if replica != nil {
		replica.Close()
	}
	if primary != nil {
		primary.Close()
	}

	st := srv.Stats()
	fmt.Printf("rqld: served %d queries (%d rows) over %d connections, %d snapshots declared\n",
		st.QueriesServed, st.RowsStreamed, st.ConnsAccepted, st.Snapshots)
	if err := db.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "rqld:", err)
		os.Exit(1)
	}
}
