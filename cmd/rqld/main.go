// Command rqld serves an RQL database over TCP with the rqld wire
// protocol. Clients (the client package, or rqlshell -connect) get
// per-session connections with the full SQL surface, snapshot
// declaration, AS OF reads, the four RQL mechanisms, and a STATS
// request exposing server and snapshot-system counters.
//
//	rqld -addr localhost:7427 -pagelog /tmp/pagelog.bin
//
// With -debug-addr an HTTP listener exposes /metrics (plain-text
// counters and the request-latency histogram), /traces (the span
// recorder's ring as Chrome trace-event JSON, Perfetto-loadable),
// /slow (the slow-query log) and net/http/pprof; -trace starts with
// the span recorder on, and -slow-threshold arms the slow-query log.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: it stops
// accepting, drains in-flight queries, then closes the database.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rql"
	"rql/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", server.DefaultAddr, "TCP listen address")
		pagelog     = flag.String("pagelog", "", "back the Pagelog with a file (empty = in memory)")
		cachePages  = flag.Int("cache-pages", 0, "snapshot page cache capacity in pages (0 = default 16384, negative disables)")
		readLatency = flag.Duration("read-latency", 0, "simulated per-Pagelog-read latency (0 = none)")
		skipFactor  = flag.Int("skip-factor", 0, "Skippy skip-merge fanout (0 = default 4)")
		reqTimeout  = flag.Duration("request-timeout", 30*time.Second, "per-request deadline")
		idleTimeout = flag.Duration("idle-timeout", 5*time.Minute, "close sessions idle longer than this")
		drain       = flag.Duration("drain-timeout", 5*time.Second, "graceful-shutdown drain bound")
		debugAddr   = flag.String("debug-addr", "", "HTTP debug listener (/metrics, /traces, /slow, pprof); empty disables")
		trace       = flag.Bool("trace", false, "start with the span recorder enabled")
		slowThresh  = flag.Duration("slow-threshold", 0, "log queries slower than this (0 disables the slow-query log)")
	)
	flag.Parse()

	rql.SetTracing(*trace)
	rql.SetSlowQueryThreshold(*slowThresh)

	db, err := rql.Open(rql.Options{
		PagelogPath:          *pagelog,
		CachePages:           *cachePages,
		SimulatedReadLatency: *readLatency,
		SkipFactor:           *skipFactor,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "rqld:", err)
		os.Exit(1)
	}

	// SnapIds exists up front so remote SELECT ... FROM SnapIds and the
	// mechanism Qs queries work before the first snapshot declaration.
	conn := db.Conn()
	if err := conn.EnsureSnapIds(); err != nil {
		fmt.Fprintln(os.Stderr, "rqld:", err)
		os.Exit(1)
	}

	srv := server.New(db, server.Config{
		Addr:           *addr,
		RequestTimeout: *reqTimeout,
		IdleTimeout:    *idleTimeout,
		DrainTimeout:   *drain,
	})

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe() }()

	if *debugAddr != "" {
		go func() {
			fmt.Printf("rqld: debug endpoint on http://%s (/metrics /traces /slow /debug/pprof)\n", *debugAddr)
			if err := srv.ServeDebug(*debugAddr); err != nil {
				fmt.Fprintln(os.Stderr, "rqld: debug listener:", err)
			}
		}()
	}

	// Give the listener a moment to bind so the banner shows the
	// resolved address (":0" picks a port).
	for i := 0; i < 100 && srv.Addr() == ""; i++ {
		time.Sleep(10 * time.Millisecond)
	}
	if a := srv.Addr(); a != "" {
		fmt.Printf("rqld: serving on %s\n", a)
	}

	select {
	case err := <-done:
		if err != nil && err != server.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "rqld:", err)
			os.Exit(1)
		}
	case s := <-sig:
		fmt.Printf("rqld: %v, draining...\n", s)
		srv.Shutdown()
		<-done
	}

	st := srv.Stats()
	fmt.Printf("rqld: served %d queries (%d rows) over %d connections, %d snapshots declared\n",
		st.QueriesServed, st.RowsStreamed, st.ConnsAccepted, st.Snapshots)
	if err := db.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "rqld:", err)
		os.Exit(1)
	}
}
