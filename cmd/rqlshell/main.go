// Command rqlshell is an interactive SQL shell over an RQL database:
// the full SQL surface including the Retro extensions (COMMIT WITH
// SNAPSHOT, SELECT AS OF) and the four RQL mechanism UDFs. By default
// it opens a private in-memory database; with -connect it speaks the
// rqld wire protocol to a remote server instead, with the same SQL
// surface and dot commands. A comma-separated -connect list opens a
// routing cluster client (first address is the primary, the rest are
// replicas): reads spread over the replicas, and every statement's legs
// share one distributed trace.
//
//	rqlshell                       # in-process, in-memory database
//	rqlshell -connect localhost:7427
//	rqlshell -connect primary:7427,replica1:7428,replica2:7429
//
// Dot commands:
//
//	.help                 show help
//	.tables               list tables and indexes
//	.snapshots            list declared snapshots (SnapIds)
//	.snapshot [label]     declare a snapshot of the current state
//	.stats                show last-statement and snapshot-system stats
//	.stats reset          zero the cumulative counters
//	.views                list materialized retro views and their counters
//	.mech                 show the last RQL mechanism run's breakdown
//	.top                  live server telemetry (rates from /timeline)
//	.trace on|off         toggle the span recorder (cluster-wide)
//	.trace last           render the last statement's span tree; in
//	                      cluster mode, one tree per node that took part
//	.trace save <file>    write the last trace as Perfetto JSON (cluster
//	                      mode stitches all nodes into per-node lanes)
//	.slow [dur|off]       show the slow-query log (set threshold locally)
//	.quit                 exit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"rql"
	"rql/client"
	"rql/internal/obs"
	"rql/internal/wire"
)

// backend is the part of the rql.Conn API the shell needs; rql.Conn and
// client.Conn both satisfy it, so every shell feature works in-process
// and remotely.
type backend interface {
	Exec(sqlText string, cb rql.RowCallback, params ...rql.Value) error
	LastStats() rql.ExecStats
	LastTrace() uint64
	DeclareSnapshot(label string) (uint64, error)
	EnsureSnapIds() error
	Objects() ([]rql.ObjectInfo, error)
}

// shellEnv is the shell's connection plus whichever stats sources the
// mode provides (db for in-process, remote for -connect). In cluster
// mode remote points at the primary, so every server-side dot command
// (.stats, .top, .slow) reads the writer's counters.
type shellEnv struct {
	conn    backend
	db      *rql.DB         // nil in remote mode
	remote  *client.Conn    // nil in local mode
	cluster *client.Cluster // non-nil with a comma-separated -connect
}

func main() {
	connect := flag.String("connect", "", "connect to rqld at host:port instead of opening an in-process database; a comma-separated list (primary,replica,...) opens a routing cluster client")
	flag.Parse()

	env := &shellEnv{}
	if addrs := strings.Split(*connect, ","); *connect != "" && len(addrs) > 1 {
		cl, err := client.OpenCluster(client.ClusterConfig{
			Primary:  strings.TrimSpace(addrs[0]),
			Replicas: trimAll(addrs[1:]),
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "rqlshell:", err)
			os.Exit(1)
		}
		defer cl.Close()
		env.conn, env.remote, env.cluster = cl, cl.Primary(), cl
		fmt.Printf("RQL shell — cluster client: primary %s, %d replica(s).\n",
			addrs[0], len(addrs)-1)
	} else if *connect != "" {
		rc, err := client.Dial(*connect)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rqlshell:", err)
			os.Exit(1)
		}
		defer rc.Close()
		env.conn, env.remote = rc, rc
		fmt.Printf("RQL shell — connected to rqld at %s.\n", *connect)
	} else {
		db, err := rql.Open(rql.Options{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "rqlshell:", err)
			os.Exit(1)
		}
		defer db.Close()
		env.conn, env.db = db.Conn(), db
		fmt.Println("RQL shell — in-memory database with Retro snapshots.")
	}
	if err := env.conn.EnsureSnapIds(); err != nil {
		fmt.Fprintln(os.Stderr, "rqlshell:", err)
		os.Exit(1)
	}
	fmt.Println(`Type SQL terminated by ';', or ".help" for commands.`)

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var pending strings.Builder
	prompt := func() {
		if pending.Len() == 0 {
			fmt.Print("rql> ")
		} else {
			fmt.Print("...> ")
		}
	}
	for prompt(); sc.Scan(); prompt() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if pending.Len() == 0 && strings.HasPrefix(trimmed, ".") {
			if !dotCommand(env, trimmed) {
				return
			}
			continue
		}
		pending.WriteString(line)
		pending.WriteString("\n")
		if !strings.HasSuffix(trimmed, ";") {
			continue
		}
		runSQL(env.conn, pending.String())
		pending.Reset()
	}
}

func runSQL(conn backend, sqlText string) {
	var cols []string
	var rows [][]string
	err := conn.Exec(sqlText, func(names []string, row []rql.Value) error {
		if cols == nil {
			cols = append([]string(nil), names...)
		}
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = v.String()
		}
		rows = append(rows, cells)
		return nil
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	printTable(cols, rows)
	st := conn.LastStats()
	if st.RowsReturned > 0 || st.PagelogReads > 0 {
		fmt.Printf("(%d rows, %v)\n", st.RowsReturned, st.Duration.Round(10e3))
	}
}

func printTable(cols []string, rows [][]string) {
	if cols == nil {
		return
	}
	widths := make([]int, len(cols))
	for i, c := range cols {
		widths[i] = len(c)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Println(strings.TrimRight(strings.Join(parts, " | "), " "))
	}
	line(cols)
	for _, r := range rows {
		line(r)
	}
}

func dotCommand(env *shellEnv, cmd string) bool {
	conn := env.conn
	fields := strings.Fields(cmd)
	switch fields[0] {
	case ".quit", ".exit":
		return false
	case ".help":
		fmt.Println(`SQL statements end with ';'. Retro/RQL extensions:
  BEGIN; ...; COMMIT WITH SNAPSHOT;            declare a snapshot
  SELECT AS OF <id> ... ;                      query a snapshot
  EXPLAIN SELECT ... ;                         show the query plan
  SELECT CollateData(snap_id, 'Qq', 'T') FROM SnapIds;
  SELECT AggregateDataInVariable(snap_id, 'Qq', 'T', 'min') FROM SnapIds;
  SELECT AggregateDataInTable(snap_id, 'Qq', 'T', '(c,max)') FROM SnapIds;
  SELECT CollateDataIntoIntervals(snap_id, 'Qq', 'T') FROM SnapIds;
  CREATE RETRO VIEW v AS CollateData('Qq');    incremental materialized view
  DROP RETRO VIEW v;
  EXPLAIN ANALYZE SELECT ... ;                 run + profile (per-iteration costs)
Dot commands: .tables .snapshots .snapshot [label] .stats [reset] .views
              .mech .replicas .top  .trace on|off|last|save <file>
              .slow [dur|off]  .quit`)
	case ".tables":
		objs, err := conn.Objects()
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		for _, o := range objs {
			store := "main"
			if o.Temp {
				store = "side (non-snapshotable)"
			}
			if o.Kind == "index" {
				fmt.Printf("  index %-24s on %-16s [%s]\n", o.Name, o.Table, store)
			} else {
				fmt.Printf("  table %-24s %19s [%s]\n", o.Name, "", store)
			}
		}
	case ".snapshots":
		runSQL(conn, `SELECT snap_id, snap_ts, label FROM SnapIds;`)
	case ".snapshot":
		label := ""
		if len(fields) > 1 {
			label = strings.Join(fields[1:], " ")
		}
		id, err := conn.DeclareSnapshot(label)
		if err != nil {
			fmt.Println("error:", err)
		} else {
			fmt.Printf("declared snapshot %d\n", id)
		}
	case ".stats":
		if len(fields) > 1 && fields[1] == "reset" {
			switch {
			case env.db != nil:
				env.db.ResetStats()
			case env.remote != nil:
				if err := env.remote.ResetStats(); err != nil {
					fmt.Println("error:", err)
					break
				}
			}
			fmt.Println("counters reset")
			break
		}
		st := conn.LastStats()
		fmt.Printf("last statement: duration=%v rows=%d pagelog_reads=%d cache_hits=%d db_reads=%d prefetch_hits=%d spt=%v auto_index=%v\n",
			st.Duration, st.RowsReturned, st.PagelogReads, st.CacheHits, st.DBReads, st.PrefetchHits, st.SPTBuildTime, st.AutoIndex)
		switch {
		case env.db != nil:
			fmt.Printf("pagelog: %d archived pages\n", env.db.PagelogPages())
			rs := env.db.RetroStats()
			fmt.Printf("retro: %d SPT builds, %d batch builds (%d snapshots, %d entries scanned), %d clustered reads (%d pages)\n",
				rs.SPTBuilds, rs.SPTBatchBuilds, rs.BatchSnapshots, rs.BatchMapScanned,
				rs.ClusteredReads, rs.ClusteredPages)
			fmt.Printf("deltas: %d delta set builds, %d delta pages retained\n",
				rs.DeltaBuilds, rs.DeltaPages)
			fmt.Printf("device: queue depth %d, %d commands (%d overlapped), busy %v\n",
				rs.DeviceQueueDepth, rs.DeviceReads, rs.OverlappedReads,
				time.Duration(rs.DeviceBusyNS))
			sst := env.db.StorageStats()
			printGroupCommit(sst.Commits, sst.Groups, sst.Conflicts,
				sst.QueueWaitNS, rs.DeviceFlushes, rs.GroupFlushesSkipped, sst.GroupSizeBuckets[:])
			vs := env.db.ViewStats()
			if vs.Views > 0 {
				fmt.Printf("views: %d (%d refreshes, %d pruned), %d rows pushed to %d subscriber(s)\n",
					vs.Views, vs.Refreshes, vs.PrunedRefreshes, vs.RowsPushed, vs.Subscribers)
			}
		case env.remote != nil:
			ss, err := env.remote.ServerStats()
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			printServerStats(ss)
		}
	case ".views":
		var infos []client.ViewInfo
		switch {
		case env.db != nil:
			for _, v := range env.db.Views() {
				infos = append(infos, client.ViewInfo{
					Name: v.Name, Mechanism: v.Mechanism,
					LastSnap: v.LastSnap, Rows: uint64(v.Rows),
					Refreshes: v.Refreshes, PrunedRefreshes: v.PrunedRefreshes,
					RowsPushed: v.RowsPushed, Subscribers: uint64(v.Subscribers),
					LastError: v.LastError,
				})
			}
		case env.remote != nil:
			var err error
			infos, err = env.remote.Views()
			if err != nil {
				fmt.Println("error:", err)
				return true
			}
		}
		if len(infos) == 0 {
			fmt.Println("no retro views (CREATE RETRO VIEW v AS CollateData('...');)")
			break
		}
		cols := []string{"view", "mechanism", "last_snap", "rows", "refreshes", "pruned", "pushed", "subs"}
		var rows [][]string
		for _, v := range infos {
			rows = append(rows, []string{
				v.Name, v.Mechanism,
				fmt.Sprint(v.LastSnap), fmt.Sprint(v.Rows),
				fmt.Sprint(v.Refreshes), fmt.Sprint(v.PrunedRefreshes),
				fmt.Sprint(v.RowsPushed), fmt.Sprint(v.Subscribers),
			})
		}
		printTable(cols, rows)
		for _, v := range infos {
			if v.LastError != "" {
				fmt.Printf("  %s last error: %s\n", v.Name, v.LastError)
			}
		}
	case ".mech":
		var run *rql.RunStats
		switch {
		case env.db != nil:
			run = env.db.LastRun()
		case env.remote != nil:
			var err error
			run, err = env.remote.LastRun()
			if err != nil {
				fmt.Println("error:", err)
				return true
			}
		}
		if run == nil {
			fmt.Println("no mechanism has run yet")
			break
		}
		fmt.Printf("%s: %d iterations, result %d rows (%d data bytes, %d index bytes)\n",
			run.Mechanism, len(run.Iterations), run.ResultRows, run.ResultDataBytes, run.ResultIndexBytes)
		if run.BatchBuilds > 0 {
			fmt.Printf("  batch SPT: %d build(s), %d maplog entries scanned in %v (one sweep for all iterations)\n",
				run.BatchBuilds, run.BatchMapScanned, run.BatchBuildTime)
		}
		switch {
		case run.PruneReason != "":
			fmt.Printf("  delta pruning: inactive — %s\n", run.PruneReason)
		case run.PrunedIterations > 0:
			fmt.Printf("  delta pruning: %d/%d iterations skipped, %d rows replayed, %d delta intersections\n",
				run.PrunedIterations, len(run.Iterations), run.PrunedRowsReplayed, run.DeltaIntersections)
		default:
			fmt.Printf("  delta pruning: active, nothing skipped (%d delta intersections)\n",
				run.DeltaIntersections)
		}
		if run.PipelinedPrefetches > 0 || run.PrefetchHits > 0 {
			fmt.Printf("  pipelined I/O: %d pages warmed, %d prefetch hits, %d wasted\n",
				run.PipelinedPrefetches, run.PrefetchHits, run.PrefetchWasted)
		}
		for _, it := range run.Iterations {
			mark := ""
			if it.Pruned {
				mark = " pruned"
			}
			if it.OverlapTime > 0 {
				mark += fmt.Sprintf(" overlap=%v", it.OverlapTime)
			}
			fmt.Printf("  snap %-4d io=%-10v spt=%-10v idx=%-10v eval=%-10v udf=%-10v rows=%d%s\n",
				it.Snapshot, it.IOTime, it.SPTBuild, it.IndexCreation, it.QueryEval, it.UDF, it.QqRows, mark)
		}
	case ".replicas":
		if env.remote == nil {
			fmt.Println("replication state lives on rqld; connect with -connect")
			break
		}
		rs, err := env.remote.ReplStats()
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		switch rs.Role {
		case wire.RoleReplica:
			fmt.Printf("role: replica of %s\n", rs.Primary)
			fmt.Printf("applied: snapshot horizon %d, lsn %d\n", rs.Horizon, rs.LSN)
			fmt.Printf("stream: %d bytes received, %d deltas, %d snapshots applied, %d bootstrap(s), %d reconnect(s)\n",
				rs.BytesReceived, rs.DeltasApplied, rs.SnapshotsApplied, rs.Bootstraps, rs.Reconnects)
			if rs.LastError != "" {
				fmt.Printf("last error: %s\n", rs.LastError)
			}
		default:
			fmt.Printf("role: primary (snapshot horizon %d, lsn %d)\n", rs.Horizon, rs.LSN)
			if len(rs.Replicas) == 0 {
				fmt.Println("no replicas have subscribed")
				break
			}
			for _, rep := range rs.Replicas {
				state := "connected"
				if !rep.Connected {
					state = "disconnected"
				}
				lag := uint64(0)
				if rs.Horizon > rep.AckedSnap {
					lag = rs.Horizon - rep.AckedSnap
				}
				fmt.Printf("  %-24s %-12s acked snap %-6d (lag %d)  lsn %-8d sent %d bytes\n",
					rep.ID, state, rep.AckedSnap, lag, rep.AckedLSN, rep.SentBytes)
			}
		}
	case ".trace":
		if len(fields) < 2 {
			fmt.Println("usage: .trace on|off|last|save <file>")
			break
		}
		switch fields[1] {
		case "on", "off":
			on := fields[1] == "on"
			switch {
			case env.cluster != nil:
				// Cluster-wide: a routed query's legs land on whichever
				// member covers the snapshot, so every recorder must be on.
				if err := env.cluster.SetTracing(on); err != nil {
					fmt.Println("error:", err)
					break
				}
			case env.remote != nil:
				if err := env.remote.SetTracing(on); err != nil {
					fmt.Println("error:", err)
					break
				}
			default:
				rql.SetTracing(on)
			}
			fmt.Printf("tracing %s\n", fields[1])
		case "last":
			id := conn.LastTrace()
			if id == 0 {
				fmt.Println("no traced statement yet (.trace on, then run SQL)")
				break
			}
			nodes, err := lastTraceSpans(env, id)
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			if len(nodes) == 0 {
				fmt.Printf("trace %d has no recorded spans (ring wrapped?)\n", id)
				break
			}
			fmt.Printf("trace %d:\n", id)
			for _, n := range nodes {
				if n.Node != "" {
					fmt.Printf("── %s ──\n", n.Node)
				}
				fmt.Print(obs.FormatTree(n.Spans))
			}
		case "save":
			if len(fields) < 3 {
				fmt.Println("usage: .trace save <file>")
				break
			}
			id := conn.LastTrace()
			if id == 0 {
				fmt.Println("no traced statement yet (.trace on, then run SQL)")
				break
			}
			nodes, err := lastTraceSpans(env, id)
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			if len(nodes) == 0 {
				fmt.Printf("trace %d has no recorded spans (ring wrapped?)\n", id)
				break
			}
			if err := saveTrace(fields[2], nodes); err != nil {
				fmt.Println("error:", err)
				break
			}
			fmt.Printf("wrote trace %d to %s (open in https://ui.perfetto.dev)\n", id, fields[2])
		default:
			fmt.Println("usage: .trace on|off|last|save <file>")
		}
	case ".top":
		if env.remote == nil {
			fmt.Println("the telemetry timeline lives on rqld; connect with -connect")
			break
		}
		period, pts, err := env.remote.Timeline()
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		printTop(period, pts)
	case ".slow":
		if len(fields) > 1 {
			if env.remote != nil {
				fmt.Println("the remote threshold is set by rqld's -slow-threshold flag")
				break
			}
			var th time.Duration
			if fields[1] != "off" {
				var err error
				th, err = time.ParseDuration(fields[1])
				if err != nil {
					fmt.Println("usage: .slow [duration|off] — e.g. .slow 50ms")
					break
				}
			}
			rql.SetSlowQueryThreshold(th)
			if th == 0 {
				fmt.Println("slow-query log off")
			} else {
				fmt.Printf("logging statements slower than %v\n", th)
			}
			break
		}
		var (
			th      time.Duration
			entries []obs.SlowEntry
		)
		if env.remote != nil {
			wt, ws, err := env.remote.SlowQueries()
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			th = wt
			for _, e := range ws {
				entries = append(entries, obs.SlowEntry{
					SQL: e.SQL, Duration: e.Duration, Trace: e.Trace,
					When: e.When, Rows: e.Rows,
				})
			}
		} else {
			th = obs.SlowThreshold()
			entries = obs.SlowEntries()
		}
		if th == 0 {
			fmt.Println("slow-query log disabled (.slow <duration> to arm it)")
			break
		}
		fmt.Printf("threshold %v, %d entries\n", th, len(entries))
		for _, e := range entries {
			fmt.Printf("  %s  %10v  rows=%-6d trace=%d  %s\n",
				e.When.Format("15:04:05.000"), e.Duration, e.Rows, e.Trace, e.SQL)
		}
	default:
		fmt.Println("unknown command; try .help")
	}
	return true
}

// trimAll trims whitespace around each address of a -connect list.
func trimAll(in []string) []string {
	out := make([]string, len(in))
	for i, s := range in {
		out[i] = strings.TrimSpace(s)
	}
	return out
}

// lastTraceSpans collects one trace's spans from wherever the shell's
// mode records them: every cluster member (one named node each), the
// single remote server, or the in-process recorder (one unnamed node).
func lastTraceSpans(env *shellEnv, id uint64) ([]obs.NodeSpans, error) {
	switch {
	case env.cluster != nil:
		nodes, err := env.cluster.TraceSpans(id)
		if err != nil {
			return nil, err
		}
		out := make([]obs.NodeSpans, 0, len(nodes))
		for _, n := range nodes {
			out = append(out, obs.NodeSpans{Node: n.Node, Spans: spansFromWire(n.Spans)})
		}
		return out, nil
	case env.remote != nil:
		ws, err := env.remote.TraceSpans(id)
		if err != nil {
			return nil, err
		}
		if len(ws) == 0 {
			return nil, nil
		}
		return []obs.NodeSpans{{Spans: spansFromWire(ws)}}, nil
	default:
		spans := obs.TraceSpans(id)
		if len(spans) == 0 {
			return nil, nil
		}
		return []obs.NodeSpans{{Spans: spans}}, nil
	}
}

// saveTrace writes nodes as Chrome trace-event JSON for Perfetto: one
// process lane per node when stitching a cluster trace, a flat file for
// a single source.
func saveTrace(path string, nodes []obs.NodeSpans) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if len(nodes) == 1 && nodes[0].Node == "" {
		return obs.WriteTraceEvents(f, nodes[0].Spans)
	}
	return obs.WriteStitchedTraceEvents(f, nodes)
}

// printTop renders the server's telemetry timeline (.top): the most
// recent sampling points as headline per-second rates, then the latest
// point's per-replica lag and per-view refresh rates.
func printTop(period time.Duration, pts []client.TimelinePoint) {
	if len(pts) == 0 {
		fmt.Printf("no telemetry yet (the server samples every %v; see rqld -timeline-period)\n", period)
		return
	}
	lookup := func(vals []wire.NamedValue, name string) float64 {
		for _, nv := range vals {
			if nv.Name == name {
				return nv.Value
			}
		}
		return 0
	}
	const show = 12
	start := 0
	if len(pts) > show {
		start = len(pts) - show
	}
	cols := []string{"time", "queries/s", "commits/s", "rows/s", "device busy %", "cache hit %"}
	var rows [][]string
	for _, p := range pts[start:] {
		reads, hits := lookup(p.Rates, "pagelog_reads"), lookup(p.Rates, "cache_hits")
		hitPct := 0.0
		if reads+hits > 0 {
			hitPct = hits / (reads + hits) * 100
		}
		rows = append(rows, []string{
			time.Unix(0, p.WhenUnixNano).Format("15:04:05"),
			fmt.Sprintf("%.1f", lookup(p.Rates, "queries_served")),
			fmt.Sprintf("%.1f", lookup(p.Rates, "commits")),
			fmt.Sprintf("%.1f", lookup(p.Rates, "rows_streamed")),
			// Busy time is summed across concurrent device commands, so
			// a deep queue can exceed 100% of one wall-second.
			fmt.Sprintf("%.1f", lookup(p.Rates, "device_busy_ns")/1e9*100),
			fmt.Sprintf("%.1f", hitPct),
		})
	}
	fmt.Printf("telemetry: %d point(s), sampled every %v (newest %d shown)\n",
		len(pts), period, len(rows))
	printTable(cols, rows)
	last := pts[len(pts)-1]
	fmt.Printf("now: %d conn(s), %d view(s), snapshot horizon %d\n",
		int64(lookup(last.Gauges, "conns_active")),
		int64(lookup(last.Gauges, "views")),
		int64(lookup(last.Gauges, "repl_horizon")))
	for _, nv := range last.Gauges {
		if id, ok := strings.CutPrefix(nv.Name, "repl_lag."); ok {
			fmt.Printf("  replica %s: lag %d snapshot(s)\n", id, int64(nv.Value))
		}
	}
	for _, nv := range last.Rates {
		if name, ok := strings.CutPrefix(nv.Name, "view_refreshes."); ok {
			fmt.Printf("  view %s: %.2f refresh/s\n", name, nv.Value)
		}
	}
}

// spansFromWire converts server-reported spans for the local renderer.
func spansFromWire(ws []client.Span) []obs.Span {
	out := make([]obs.Span, len(ws))
	for i, w := range ws {
		s := obs.Span{
			Trace: w.Trace, ID: w.ID, Parent: w.Parent,
			Name: w.Name, Start: w.Start, Duration: w.Duration,
		}
		for _, a := range w.Attrs {
			s.Attrs = append(s.Attrs, obs.Attr{Key: a.Key, Str: a.Str, Int: a.Int, IsStr: a.IsStr})
		}
		out[i] = s
	}
	return out
}

func printServerStats(ss client.ServerStats) {
	fmt.Printf("server: %d conns accepted (%d active), %d queries, %d rows streamed, %d errors\n",
		ss.ConnsAccepted, ss.ConnsActive, ss.QueriesServed, ss.RowsStreamed, ss.Errors)
	// Render against the bounds the server reported, not a compiled-in
	// copy: a server with different bucketing still prints correctly.
	var hist strings.Builder
	for i, c := range ss.LatencyBuckets {
		if i < len(ss.LatencyBounds) {
			fmt.Fprintf(&hist, " <=%v:%d", ss.LatencyBounds[i], c)
		} else {
			fmt.Fprintf(&hist, " +Inf:%d", c)
		}
	}
	fmt.Printf("latency:%s\n", hist.String())
	fmt.Printf("storage: %d commits, %d pages written, %d db reads\n",
		ss.Commits, ss.PagesWritten, ss.DBReads)
	fmt.Printf("retro: %d snapshots, pagelog %d pages (%d writes, %d reads), %d cache hits (%d cached), %d SPT builds\n",
		ss.Snapshots, ss.PagelogPages, ss.PagelogWrites, ss.PagelogReads,
		ss.CacheHits, ss.CachedPages, ss.SPTBuilds)
	fmt.Printf("batch: %d batch SPT builds (%d snapshots, %d entries scanned), %d clustered reads (%d pages)\n",
		ss.SPTBatchBuilds, ss.BatchSnapshots, ss.BatchMapScanned,
		ss.ClusteredReads, ss.ClusteredPages)
	fmt.Printf("deltas: %d delta set builds, %d delta pages retained\n",
		ss.DeltaBuilds, ss.DeltaPages)
	fmt.Printf("device: queue depth %d, %d commands (%d overlapped), busy %v, %d bytes read\n",
		ss.DeviceQueueDepth, ss.DeviceReads, ss.OverlappedReads,
		time.Duration(ss.DeviceBusyNS), ss.DeviceBytesRead)
	fmt.Printf("tiers: %d sealed segments (%d pages) + tail %d pages, %d logical bytes on %d disk bytes\n",
		ss.Segments, ss.SegmentPages, ss.TailPages,
		ss.PagelogLogicalBytes, ss.PagelogDiskBytes)
	fmt.Printf("compactor: %d seals (%d pages sealed), %d retention drops (%d pages), %d block-cache hits\n",
		ss.SegmentSeals, ss.SealedPages, ss.RetentionDrops,
		ss.RetentionDroppedPages, ss.SegBlockHits)
	printGroupCommit(ss.Commits, ss.CommitGroups, ss.CommitConflicts,
		ss.CommitQueueWaitNS, ss.DeviceFlushes, ss.GroupFlushesSkipped, ss.GroupSizeBuckets[:])
	if ss.Views > 0 {
		fmt.Printf("views: %d (%d refreshes, %d pruned), %d rows pushed to %d subscriber(s)\n",
			ss.Views, ss.ViewRefreshes, ss.ViewPrunedRefreshes, ss.ViewRowsPushed, ss.ViewSubscribers)
	}
}

// printGroupCommit renders the commit-group counters: groups drained,
// mean group size, conflict aborts, queue wait, device flushes, and the
// group-size histogram (a legacy-path commit is a group of one).
func printGroupCommit(commits, groups, conflicts, waitNS, flushes, skipped uint64, buckets []uint64) {
	mean := 0.0
	if groups > 0 {
		mean = float64(commits) / float64(groups)
	}
	fmt.Printf("commit groups: %d (mean size %.2f), %d conflicts aborted, queue wait %v, %d device flushes (%d skipped)\n",
		groups, mean, conflicts, time.Duration(waitNS), flushes, skipped)
	var hist strings.Builder
	for i, c := range buckets {
		if i < len(wire.GroupSizeBounds) {
			fmt.Fprintf(&hist, " <=%d:%d", wire.GroupSizeBounds[i], c)
		} else {
			fmt.Fprintf(&hist, " +Inf:%d", c)
		}
	}
	fmt.Printf("group size:%s\n", hist.String())
}
