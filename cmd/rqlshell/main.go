// Command rqlshell is an interactive SQL shell over an RQL database:
// the full SQL surface including the Retro extensions (COMMIT WITH
// SNAPSHOT, SELECT AS OF) and the four RQL mechanism UDFs. By default
// it opens a private in-memory database; with -connect it speaks the
// rqld wire protocol to a remote server instead, with the same SQL
// surface and dot commands.
//
//	rqlshell                       # in-process, in-memory database
//	rqlshell -connect localhost:7427
//
// Dot commands:
//
//	.help                 show help
//	.tables               list tables and indexes
//	.snapshots            list declared snapshots (SnapIds)
//	.snapshot [label]     declare a snapshot of the current state
//	.stats                show last-statement and snapshot-system stats
//	.stats reset          zero the cumulative counters
//	.views                list materialized retro views and their counters
//	.mech                 show the last RQL mechanism run's breakdown
//	.trace on|off         toggle the span recorder
//	.trace last           render the last statement's span tree
//	.slow [dur|off]       show the slow-query log (set threshold locally)
//	.quit                 exit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"rql"
	"rql/client"
	"rql/internal/obs"
	"rql/internal/wire"
)

// backend is the part of the rql.Conn API the shell needs; rql.Conn and
// client.Conn both satisfy it, so every shell feature works in-process
// and remotely.
type backend interface {
	Exec(sqlText string, cb rql.RowCallback, params ...rql.Value) error
	LastStats() rql.ExecStats
	LastTrace() uint64
	DeclareSnapshot(label string) (uint64, error)
	EnsureSnapIds() error
	Objects() ([]rql.ObjectInfo, error)
}

// shellEnv is the shell's connection plus whichever stats sources the
// mode provides (db for in-process, remote for -connect).
type shellEnv struct {
	conn   backend
	db     *rql.DB      // nil in remote mode
	remote *client.Conn // nil in local mode
}

func main() {
	connect := flag.String("connect", "", "connect to an rqld server at host:port instead of opening an in-process database")
	flag.Parse()

	env := &shellEnv{}
	if *connect != "" {
		rc, err := client.Dial(*connect)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rqlshell:", err)
			os.Exit(1)
		}
		defer rc.Close()
		env.conn, env.remote = rc, rc
		fmt.Printf("RQL shell — connected to rqld at %s.\n", *connect)
	} else {
		db, err := rql.Open(rql.Options{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "rqlshell:", err)
			os.Exit(1)
		}
		defer db.Close()
		env.conn, env.db = db.Conn(), db
		fmt.Println("RQL shell — in-memory database with Retro snapshots.")
	}
	if err := env.conn.EnsureSnapIds(); err != nil {
		fmt.Fprintln(os.Stderr, "rqlshell:", err)
		os.Exit(1)
	}
	fmt.Println(`Type SQL terminated by ';', or ".help" for commands.`)

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var pending strings.Builder
	prompt := func() {
		if pending.Len() == 0 {
			fmt.Print("rql> ")
		} else {
			fmt.Print("...> ")
		}
	}
	for prompt(); sc.Scan(); prompt() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if pending.Len() == 0 && strings.HasPrefix(trimmed, ".") {
			if !dotCommand(env, trimmed) {
				return
			}
			continue
		}
		pending.WriteString(line)
		pending.WriteString("\n")
		if !strings.HasSuffix(trimmed, ";") {
			continue
		}
		runSQL(env.conn, pending.String())
		pending.Reset()
	}
}

func runSQL(conn backend, sqlText string) {
	var cols []string
	var rows [][]string
	err := conn.Exec(sqlText, func(names []string, row []rql.Value) error {
		if cols == nil {
			cols = append([]string(nil), names...)
		}
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = v.String()
		}
		rows = append(rows, cells)
		return nil
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	printTable(cols, rows)
	st := conn.LastStats()
	if st.RowsReturned > 0 || st.PagelogReads > 0 {
		fmt.Printf("(%d rows, %v)\n", st.RowsReturned, st.Duration.Round(10e3))
	}
}

func printTable(cols []string, rows [][]string) {
	if cols == nil {
		return
	}
	widths := make([]int, len(cols))
	for i, c := range cols {
		widths[i] = len(c)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Println(strings.TrimRight(strings.Join(parts, " | "), " "))
	}
	line(cols)
	for _, r := range rows {
		line(r)
	}
}

func dotCommand(env *shellEnv, cmd string) bool {
	conn := env.conn
	fields := strings.Fields(cmd)
	switch fields[0] {
	case ".quit", ".exit":
		return false
	case ".help":
		fmt.Println(`SQL statements end with ';'. Retro/RQL extensions:
  BEGIN; ...; COMMIT WITH SNAPSHOT;            declare a snapshot
  SELECT AS OF <id> ... ;                      query a snapshot
  EXPLAIN SELECT ... ;                         show the query plan
  SELECT CollateData(snap_id, 'Qq', 'T') FROM SnapIds;
  SELECT AggregateDataInVariable(snap_id, 'Qq', 'T', 'min') FROM SnapIds;
  SELECT AggregateDataInTable(snap_id, 'Qq', 'T', '(c,max)') FROM SnapIds;
  SELECT CollateDataIntoIntervals(snap_id, 'Qq', 'T') FROM SnapIds;
  CREATE RETRO VIEW v AS CollateData('Qq');    incremental materialized view
  DROP RETRO VIEW v;
Dot commands: .tables .snapshots .snapshot [label] .stats [reset] .views
              .mech .replicas  .trace on|off|last  .slow [dur|off]  .quit`)
	case ".tables":
		objs, err := conn.Objects()
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		for _, o := range objs {
			store := "main"
			if o.Temp {
				store = "side (non-snapshotable)"
			}
			if o.Kind == "index" {
				fmt.Printf("  index %-24s on %-16s [%s]\n", o.Name, o.Table, store)
			} else {
				fmt.Printf("  table %-24s %19s [%s]\n", o.Name, "", store)
			}
		}
	case ".snapshots":
		runSQL(conn, `SELECT snap_id, snap_ts, label FROM SnapIds;`)
	case ".snapshot":
		label := ""
		if len(fields) > 1 {
			label = strings.Join(fields[1:], " ")
		}
		id, err := conn.DeclareSnapshot(label)
		if err != nil {
			fmt.Println("error:", err)
		} else {
			fmt.Printf("declared snapshot %d\n", id)
		}
	case ".stats":
		if len(fields) > 1 && fields[1] == "reset" {
			switch {
			case env.db != nil:
				env.db.ResetStats()
			case env.remote != nil:
				if err := env.remote.ResetStats(); err != nil {
					fmt.Println("error:", err)
					break
				}
			}
			fmt.Println("counters reset")
			break
		}
		st := conn.LastStats()
		fmt.Printf("last statement: duration=%v rows=%d pagelog_reads=%d cache_hits=%d db_reads=%d prefetch_hits=%d spt=%v auto_index=%v\n",
			st.Duration, st.RowsReturned, st.PagelogReads, st.CacheHits, st.DBReads, st.PrefetchHits, st.SPTBuildTime, st.AutoIndex)
		switch {
		case env.db != nil:
			fmt.Printf("pagelog: %d archived pages\n", env.db.PagelogPages())
			rs := env.db.RetroStats()
			fmt.Printf("retro: %d SPT builds, %d batch builds (%d snapshots, %d entries scanned), %d clustered reads (%d pages)\n",
				rs.SPTBuilds, rs.SPTBatchBuilds, rs.BatchSnapshots, rs.BatchMapScanned,
				rs.ClusteredReads, rs.ClusteredPages)
			fmt.Printf("deltas: %d delta set builds, %d delta pages retained\n",
				rs.DeltaBuilds, rs.DeltaPages)
			fmt.Printf("device: queue depth %d, %d commands (%d overlapped), busy %v\n",
				rs.DeviceQueueDepth, rs.DeviceReads, rs.OverlappedReads,
				time.Duration(rs.DeviceBusyNS))
			sst := env.db.StorageStats()
			printGroupCommit(sst.Commits, sst.Groups, sst.Conflicts,
				sst.QueueWaitNS, rs.DeviceFlushes, rs.GroupFlushesSkipped, sst.GroupSizeBuckets[:])
			vs := env.db.ViewStats()
			if vs.Views > 0 {
				fmt.Printf("views: %d (%d refreshes, %d pruned), %d rows pushed to %d subscriber(s)\n",
					vs.Views, vs.Refreshes, vs.PrunedRefreshes, vs.RowsPushed, vs.Subscribers)
			}
		case env.remote != nil:
			ss, err := env.remote.ServerStats()
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			printServerStats(ss)
		}
	case ".views":
		var infos []client.ViewInfo
		switch {
		case env.db != nil:
			for _, v := range env.db.Views() {
				infos = append(infos, client.ViewInfo{
					Name: v.Name, Mechanism: v.Mechanism,
					LastSnap: v.LastSnap, Rows: uint64(v.Rows),
					Refreshes: v.Refreshes, PrunedRefreshes: v.PrunedRefreshes,
					RowsPushed: v.RowsPushed, Subscribers: uint64(v.Subscribers),
					LastError: v.LastError,
				})
			}
		case env.remote != nil:
			var err error
			infos, err = env.remote.Views()
			if err != nil {
				fmt.Println("error:", err)
				return true
			}
		}
		if len(infos) == 0 {
			fmt.Println("no retro views (CREATE RETRO VIEW v AS CollateData('...');)")
			break
		}
		cols := []string{"view", "mechanism", "last_snap", "rows", "refreshes", "pruned", "pushed", "subs"}
		var rows [][]string
		for _, v := range infos {
			rows = append(rows, []string{
				v.Name, v.Mechanism,
				fmt.Sprint(v.LastSnap), fmt.Sprint(v.Rows),
				fmt.Sprint(v.Refreshes), fmt.Sprint(v.PrunedRefreshes),
				fmt.Sprint(v.RowsPushed), fmt.Sprint(v.Subscribers),
			})
		}
		printTable(cols, rows)
		for _, v := range infos {
			if v.LastError != "" {
				fmt.Printf("  %s last error: %s\n", v.Name, v.LastError)
			}
		}
	case ".mech":
		var run *rql.RunStats
		switch {
		case env.db != nil:
			run = env.db.LastRun()
		case env.remote != nil:
			var err error
			run, err = env.remote.LastRun()
			if err != nil {
				fmt.Println("error:", err)
				return true
			}
		}
		if run == nil {
			fmt.Println("no mechanism has run yet")
			break
		}
		fmt.Printf("%s: %d iterations, result %d rows (%d data bytes, %d index bytes)\n",
			run.Mechanism, len(run.Iterations), run.ResultRows, run.ResultDataBytes, run.ResultIndexBytes)
		if run.BatchBuilds > 0 {
			fmt.Printf("  batch SPT: %d build(s), %d maplog entries scanned in %v (one sweep for all iterations)\n",
				run.BatchBuilds, run.BatchMapScanned, run.BatchBuildTime)
		}
		switch {
		case run.PruneReason != "":
			fmt.Printf("  delta pruning: inactive — %s\n", run.PruneReason)
		case run.PrunedIterations > 0:
			fmt.Printf("  delta pruning: %d/%d iterations skipped, %d rows replayed, %d delta intersections\n",
				run.PrunedIterations, len(run.Iterations), run.PrunedRowsReplayed, run.DeltaIntersections)
		default:
			fmt.Printf("  delta pruning: active, nothing skipped (%d delta intersections)\n",
				run.DeltaIntersections)
		}
		if run.PipelinedPrefetches > 0 || run.PrefetchHits > 0 {
			fmt.Printf("  pipelined I/O: %d pages warmed, %d prefetch hits, %d wasted\n",
				run.PipelinedPrefetches, run.PrefetchHits, run.PrefetchWasted)
		}
		for _, it := range run.Iterations {
			mark := ""
			if it.Pruned {
				mark = " pruned"
			}
			if it.OverlapTime > 0 {
				mark += fmt.Sprintf(" overlap=%v", it.OverlapTime)
			}
			fmt.Printf("  snap %-4d io=%-10v spt=%-10v idx=%-10v eval=%-10v udf=%-10v rows=%d%s\n",
				it.Snapshot, it.IOTime, it.SPTBuild, it.IndexCreation, it.QueryEval, it.UDF, it.QqRows, mark)
		}
	case ".replicas":
		if env.remote == nil {
			fmt.Println("replication state lives on rqld; connect with -connect")
			break
		}
		rs, err := env.remote.ReplStats()
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		switch rs.Role {
		case wire.RoleReplica:
			fmt.Printf("role: replica of %s\n", rs.Primary)
			fmt.Printf("applied: snapshot horizon %d, lsn %d\n", rs.Horizon, rs.LSN)
			fmt.Printf("stream: %d bytes received, %d deltas, %d snapshots applied, %d bootstrap(s), %d reconnect(s)\n",
				rs.BytesReceived, rs.DeltasApplied, rs.SnapshotsApplied, rs.Bootstraps, rs.Reconnects)
			if rs.LastError != "" {
				fmt.Printf("last error: %s\n", rs.LastError)
			}
		default:
			fmt.Printf("role: primary (snapshot horizon %d, lsn %d)\n", rs.Horizon, rs.LSN)
			if len(rs.Replicas) == 0 {
				fmt.Println("no replicas have subscribed")
				break
			}
			for _, rep := range rs.Replicas {
				state := "connected"
				if !rep.Connected {
					state = "disconnected"
				}
				lag := uint64(0)
				if rs.Horizon > rep.AckedSnap {
					lag = rs.Horizon - rep.AckedSnap
				}
				fmt.Printf("  %-24s %-12s acked snap %-6d (lag %d)  lsn %-8d sent %d bytes\n",
					rep.ID, state, rep.AckedSnap, lag, rep.AckedLSN, rep.SentBytes)
			}
		}
	case ".trace":
		if len(fields) < 2 {
			fmt.Println("usage: .trace on|off|last")
			break
		}
		switch fields[1] {
		case "on", "off":
			on := fields[1] == "on"
			if env.remote != nil {
				if err := env.remote.SetTracing(on); err != nil {
					fmt.Println("error:", err)
					break
				}
			} else {
				rql.SetTracing(on)
			}
			fmt.Printf("tracing %s\n", fields[1])
		case "last":
			id := conn.LastTrace()
			if id == 0 {
				fmt.Println("no traced statement yet (.trace on, then run SQL)")
				break
			}
			var spans []obs.Span
			if env.remote != nil {
				ws, err := env.remote.TraceSpans(id)
				if err != nil {
					fmt.Println("error:", err)
					break
				}
				spans = spansFromWire(ws)
			} else {
				spans = obs.TraceSpans(id)
			}
			if len(spans) == 0 {
				fmt.Printf("trace %d has no recorded spans (ring wrapped?)\n", id)
				break
			}
			fmt.Printf("trace %d:\n%s", id, obs.FormatTree(spans))
		default:
			fmt.Println("usage: .trace on|off|last")
		}
	case ".slow":
		if len(fields) > 1 {
			if env.remote != nil {
				fmt.Println("the remote threshold is set by rqld's -slow-threshold flag")
				break
			}
			var th time.Duration
			if fields[1] != "off" {
				var err error
				th, err = time.ParseDuration(fields[1])
				if err != nil {
					fmt.Println("usage: .slow [duration|off] — e.g. .slow 50ms")
					break
				}
			}
			rql.SetSlowQueryThreshold(th)
			if th == 0 {
				fmt.Println("slow-query log off")
			} else {
				fmt.Printf("logging statements slower than %v\n", th)
			}
			break
		}
		var (
			th      time.Duration
			entries []obs.SlowEntry
		)
		if env.remote != nil {
			wt, ws, err := env.remote.SlowQueries()
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			th = wt
			for _, e := range ws {
				entries = append(entries, obs.SlowEntry{
					SQL: e.SQL, Duration: e.Duration, Trace: e.Trace,
					When: e.When, Rows: e.Rows,
				})
			}
		} else {
			th = obs.SlowThreshold()
			entries = obs.SlowEntries()
		}
		if th == 0 {
			fmt.Println("slow-query log disabled (.slow <duration> to arm it)")
			break
		}
		fmt.Printf("threshold %v, %d entries\n", th, len(entries))
		for _, e := range entries {
			fmt.Printf("  %s  %10v  rows=%-6d trace=%d  %s\n",
				e.When.Format("15:04:05.000"), e.Duration, e.Rows, e.Trace, e.SQL)
		}
	default:
		fmt.Println("unknown command; try .help")
	}
	return true
}

// spansFromWire converts server-reported spans for the local renderer.
func spansFromWire(ws []client.Span) []obs.Span {
	out := make([]obs.Span, len(ws))
	for i, w := range ws {
		s := obs.Span{
			Trace: w.Trace, ID: w.ID, Parent: w.Parent,
			Name: w.Name, Start: w.Start, Duration: w.Duration,
		}
		for _, a := range w.Attrs {
			s.Attrs = append(s.Attrs, obs.Attr{Key: a.Key, Str: a.Str, Int: a.Int, IsStr: a.IsStr})
		}
		out[i] = s
	}
	return out
}

func printServerStats(ss client.ServerStats) {
	fmt.Printf("server: %d conns accepted (%d active), %d queries, %d rows streamed, %d errors\n",
		ss.ConnsAccepted, ss.ConnsActive, ss.QueriesServed, ss.RowsStreamed, ss.Errors)
	// Render against the bounds the server reported, not a compiled-in
	// copy: a server with different bucketing still prints correctly.
	var hist strings.Builder
	for i, c := range ss.LatencyBuckets {
		if i < len(ss.LatencyBounds) {
			fmt.Fprintf(&hist, " <=%v:%d", ss.LatencyBounds[i], c)
		} else {
			fmt.Fprintf(&hist, " +Inf:%d", c)
		}
	}
	fmt.Printf("latency:%s\n", hist.String())
	fmt.Printf("storage: %d commits, %d pages written, %d db reads\n",
		ss.Commits, ss.PagesWritten, ss.DBReads)
	fmt.Printf("retro: %d snapshots, pagelog %d pages (%d writes, %d reads), %d cache hits (%d cached), %d SPT builds\n",
		ss.Snapshots, ss.PagelogPages, ss.PagelogWrites, ss.PagelogReads,
		ss.CacheHits, ss.CachedPages, ss.SPTBuilds)
	fmt.Printf("batch: %d batch SPT builds (%d snapshots, %d entries scanned), %d clustered reads (%d pages)\n",
		ss.SPTBatchBuilds, ss.BatchSnapshots, ss.BatchMapScanned,
		ss.ClusteredReads, ss.ClusteredPages)
	fmt.Printf("deltas: %d delta set builds, %d delta pages retained\n",
		ss.DeltaBuilds, ss.DeltaPages)
	fmt.Printf("device: queue depth %d, %d commands (%d overlapped), busy %v, %d bytes read\n",
		ss.DeviceQueueDepth, ss.DeviceReads, ss.OverlappedReads,
		time.Duration(ss.DeviceBusyNS), ss.DeviceBytesRead)
	fmt.Printf("tiers: %d sealed segments (%d pages) + tail %d pages, %d logical bytes on %d disk bytes\n",
		ss.Segments, ss.SegmentPages, ss.TailPages,
		ss.PagelogLogicalBytes, ss.PagelogDiskBytes)
	fmt.Printf("compactor: %d seals (%d pages sealed), %d retention drops (%d pages), %d block-cache hits\n",
		ss.SegmentSeals, ss.SealedPages, ss.RetentionDrops,
		ss.RetentionDroppedPages, ss.SegBlockHits)
	printGroupCommit(ss.Commits, ss.CommitGroups, ss.CommitConflicts,
		ss.CommitQueueWaitNS, ss.DeviceFlushes, ss.GroupFlushesSkipped, ss.GroupSizeBuckets[:])
	if ss.Views > 0 {
		fmt.Printf("views: %d (%d refreshes, %d pruned), %d rows pushed to %d subscriber(s)\n",
			ss.Views, ss.ViewRefreshes, ss.ViewPrunedRefreshes, ss.ViewRowsPushed, ss.ViewSubscribers)
	}
}

// printGroupCommit renders the commit-group counters: groups drained,
// mean group size, conflict aborts, queue wait, device flushes, and the
// group-size histogram (a legacy-path commit is a group of one).
func printGroupCommit(commits, groups, conflicts, waitNS, flushes, skipped uint64, buckets []uint64) {
	mean := 0.0
	if groups > 0 {
		mean = float64(commits) / float64(groups)
	}
	fmt.Printf("commit groups: %d (mean size %.2f), %d conflicts aborted, queue wait %v, %d device flushes (%d skipped)\n",
		groups, mean, conflicts, time.Duration(waitNS), flushes, skipped)
	var hist strings.Builder
	for i, c := range buckets {
		if i < len(wire.GroupSizeBounds) {
			fmt.Fprintf(&hist, " <=%d:%d", wire.GroupSizeBounds[i], c)
		} else {
			fmt.Fprintf(&hist, " +Inf:%d", c)
		}
	}
	fmt.Printf("group size:%s\n", hist.String())
}
