// Command rqlshell is an interactive SQL shell over an RQL database:
// the full SQL surface including the Retro extensions (COMMIT WITH
// SNAPSHOT, SELECT AS OF) and the four RQL mechanism UDFs.
//
// Dot commands:
//
//	.help                 show help
//	.tables               list tables and indexes
//	.snapshots            list declared snapshots (SnapIds)
//	.snapshot [label]     declare a snapshot of the current state
//	.stats                show last-statement and snapshot-system stats
//	.mech                 show the last RQL mechanism run's breakdown
//	.quit                 exit
package main

import (
	"bufio"
	"fmt"
	"os"
	"strings"

	"rql"
)

func main() {
	db, err := rql.Open(rql.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "rqlshell:", err)
		os.Exit(1)
	}
	defer db.Close()
	conn := db.Conn()
	if err := conn.EnsureSnapIds(); err != nil {
		fmt.Fprintln(os.Stderr, "rqlshell:", err)
		os.Exit(1)
	}

	fmt.Println("RQL shell — in-memory database with Retro snapshots.")
	fmt.Println(`Type SQL terminated by ';', or ".help" for commands.`)

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var pending strings.Builder
	prompt := func() {
		if pending.Len() == 0 {
			fmt.Print("rql> ")
		} else {
			fmt.Print("...> ")
		}
	}
	for prompt(); sc.Scan(); prompt() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if pending.Len() == 0 && strings.HasPrefix(trimmed, ".") {
			if !dotCommand(db, conn, trimmed) {
				return
			}
			continue
		}
		pending.WriteString(line)
		pending.WriteString("\n")
		if !strings.HasSuffix(trimmed, ";") {
			continue
		}
		runSQL(conn, pending.String())
		pending.Reset()
	}
}

func runSQL(conn *rql.Conn, sqlText string) {
	var cols []string
	var rows [][]string
	err := conn.Exec(sqlText, func(names []string, row []rql.Value) error {
		if cols == nil {
			cols = append([]string(nil), names...)
		}
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = v.String()
		}
		rows = append(rows, cells)
		return nil
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	printTable(cols, rows)
	st := conn.LastStats()
	if st.RowsReturned > 0 || st.PagelogReads > 0 {
		fmt.Printf("(%d rows, %v)\n", st.RowsReturned, st.Duration.Round(10e3))
	}
}

func printTable(cols []string, rows [][]string) {
	if cols == nil {
		return
	}
	widths := make([]int, len(cols))
	for i, c := range cols {
		widths[i] = len(c)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Println(strings.TrimRight(strings.Join(parts, " | "), " "))
	}
	line(cols)
	for _, r := range rows {
		line(r)
	}
}

func dotCommand(db *rql.DB, conn *rql.Conn, cmd string) bool {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case ".quit", ".exit":
		return false
	case ".help":
		fmt.Println(`SQL statements end with ';'. Retro/RQL extensions:
  BEGIN; ...; COMMIT WITH SNAPSHOT;            declare a snapshot
  SELECT AS OF <id> ... ;                      query a snapshot
  EXPLAIN SELECT ... ;                         show the query plan
  SELECT CollateData(snap_id, 'Qq', 'T') FROM SnapIds;
  SELECT AggregateDataInVariable(snap_id, 'Qq', 'T', 'min') FROM SnapIds;
  SELECT AggregateDataInTable(snap_id, 'Qq', 'T', '(c,max)') FROM SnapIds;
  SELECT CollateDataIntoIntervals(snap_id, 'Qq', 'T') FROM SnapIds;
Dot commands: .tables .snapshots .snapshot [label] .stats .mech .quit`)
	case ".tables":
		objs, err := conn.Objects()
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		for _, o := range objs {
			store := "main"
			if o.Temp {
				store = "side (non-snapshotable)"
			}
			if o.Kind == "index" {
				fmt.Printf("  index %-24s on %-16s [%s]\n", o.Name, o.Table, store)
			} else {
				fmt.Printf("  table %-24s %19s [%s]\n", o.Name, "", store)
			}
		}
	case ".snapshots":
		runSQL(conn, `SELECT snap_id, snap_ts, label FROM SnapIds;`)
	case ".snapshot":
		label := ""
		if len(fields) > 1 {
			label = strings.Join(fields[1:], " ")
		}
		id, err := conn.DeclareSnapshot(label)
		if err != nil {
			fmt.Println("error:", err)
		} else {
			fmt.Printf("declared snapshot %d\n", id)
		}
	case ".stats":
		st := conn.LastStats()
		fmt.Printf("last statement: duration=%v rows=%d pagelog_reads=%d cache_hits=%d db_reads=%d spt=%v auto_index=%v\n",
			st.Duration, st.RowsReturned, st.PagelogReads, st.CacheHits, st.DBReads, st.SPTBuildTime, st.AutoIndex)
		fmt.Printf("pagelog: %d archived pages\n", db.PagelogPages())
	case ".mech":
		run := db.LastRun()
		if run == nil {
			fmt.Println("no mechanism has run yet")
			break
		}
		fmt.Printf("%s: %d iterations, result %d rows (%d data bytes, %d index bytes)\n",
			run.Mechanism, len(run.Iterations), run.ResultRows, run.ResultDataBytes, run.ResultIndexBytes)
		for _, it := range run.Iterations {
			fmt.Printf("  snap %-4d io=%-10v spt=%-10v idx=%-10v eval=%-10v udf=%-10v rows=%d\n",
				it.Snapshot, it.IOTime, it.SPTBuild, it.IndexCreation, it.QueryEval, it.UDF, it.QqRows)
		}
	default:
		fmt.Println("unknown command; try .help")
	}
	return true
}
