// Command tpchgen loads the TPC-H database at a chosen scale factor,
// runs one of the paper's update workloads to build a snapshot history,
// and reports the resulting store/Pagelog geometry. It demonstrates the
// substrate the experiments run on and doubles as a capacity-planning
// tool for choosing scale factors.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rql/internal/bench"
	"rql/internal/storage"
)

func main() {
	var (
		sf        = flag.Float64("sf", 0.01, "TPC-H scale factor (1.0 = 1.5M orders)")
		uwName    = flag.String("uw", "UW30", "update workload: UW7.5, UW15, UW30, UW60")
		snapshots = flag.Int("snapshots", 60, "snapshot history length")
		seed      = flag.Int64("seed", 0, "generation seed")
	)
	flag.Parse()

	var uw bench.UW
	switch *uwName {
	case "UW7.5":
		uw = bench.UW75
	case "UW15":
		uw = bench.UW15
	case "UW30":
		uw = bench.UW30
	case "UW60":
		uw = bench.UW60
	default:
		fmt.Fprintf(os.Stderr, "tpchgen: unknown workload %q\n", *uwName)
		os.Exit(2)
	}

	start := time.Now()
	env, err := bench.NewEnv(uw, *snapshots, bench.Config{SF: *sf, Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tpchgen:", err)
		os.Exit(1)
	}
	defer env.Close()
	buildTime := time.Since(start)

	fmt.Printf("TPC-H loaded at SF %g with %s (%d snapshots) in %v\n",
		*sf, uw.Name, *snapshots, buildTime.Round(time.Millisecond))
	fmt.Printf("overwrite cycle: %d snapshots\n\n", uw.Cycle)

	for _, table := range []string{"region", "nation", "supplier", "customer", "part", "partsupp", "orders", "lineitem"} {
		st, err := env.Conn.TableStats(table)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tpchgen:", err)
			os.Exit(1)
		}
		fmt.Printf("  %-9s %9d rows  %12d bytes\n", table, st.Rows, st.DataBytes)
	}

	main := env.DB.MainStore()
	fmt.Printf("\nstore: %d pages (%d free), %.1f MiB\n",
		main.NumPages(), main.NumFree(),
		float64(main.NumPages())*float64(storage.PageSize)/(1<<20))
	fmt.Printf("pagelog: %d archived pre-states, %.1f MiB; maplog: %d entries\n",
		env.DB.Retro().PagelogPages(),
		float64(env.DB.Retro().PagelogPages())*float64(storage.PageSize)/(1<<20),
		env.DB.Retro().MaplogEntries())

	// A taste of retrospection: order-window drift across the history.
	for _, snap := range []uint64{1, uint64(*snapshots) / 2, uint64(*snapshots)} {
		rows, err := env.Conn.Query(
			fmt.Sprintf(`SELECT AS OF %d MIN(o_orderkey), MAX(o_orderkey), COUNT(*) FROM orders`, snap))
		if err != nil {
			fmt.Fprintln(os.Stderr, "tpchgen:", err)
			os.Exit(1)
		}
		r := rows.Rows[0]
		fmt.Printf("snapshot %-4d orders window [%v, %v], %v rows\n", snap, r[0], r[1], r[2])
	}
}
