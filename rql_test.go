package rql_test

import (
	"fmt"
	"strings"
	"testing"

	"rql"
)

func openTestDB(t *testing.T) (*rql.DB, *rql.Conn) {
	t.Helper()
	db, err := rql.Open(rql.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db, db.Conn()
}

// TestPublicAPIQuickstart walks the README flow through the facade.
func TestPublicAPIQuickstart(t *testing.T) {
	db, conn := openTestDB(t)

	steps := []string{
		`CREATE TABLE logged_in (user TEXT, country TEXT)`,
		`INSERT INTO logged_in VALUES ('ann', 'USA'), ('ben', 'UK')`,
	}
	for _, s := range steps {
		if err := conn.Exec(s, nil); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
	snap, err := conn.DeclareSnapshot("day-1")
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Exec(`DELETE FROM logged_in WHERE user = 'ann'`, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.DeclareSnapshot("day-2"); err != nil {
		t.Fatal(err)
	}

	rows, err := conn.Query(fmt.Sprintf(`SELECT AS OF %d user FROM logged_in ORDER BY user`, snap))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Rows) != 2 || rows.Rows[0][0].Text() != "ann" {
		t.Fatalf("AS OF result: %v", rows.Rows)
	}

	// The four mechanisms through the facade.
	if _, err := conn.CollateData(`SELECT snap_id FROM SnapIds`,
		`SELECT user, current_snapshot() AS sid FROM logged_in`, "R1"); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.AggregateDataInVariable(`SELECT snap_id FROM SnapIds`,
		`SELECT COUNT(*) FROM logged_in`, "R2", "max"); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.AggregateDataInTable(`SELECT snap_id FROM SnapIds`,
		`SELECT country, COUNT(*) AS c FROM logged_in GROUP BY country`, "R3", "(c,max)"); err != nil {
		t.Fatal(err)
	}
	stats, err := conn.CollateDataIntoIntervals(`SELECT snap_id FROM SnapIds`,
		`SELECT user FROM logged_in`, "R4")
	if err != nil {
		t.Fatal(err)
	}
	if stats.ResultRows != 2 { // ann [1,1], ben [1,2]
		t.Errorf("intervals rows = %d", stats.ResultRows)
	}
	if db.LastRun() == nil || db.LastRun().Mechanism != "CollateDataIntoIntervals" {
		t.Errorf("LastRun: %+v", db.LastRun())
	}

	r2, err := conn.Query(`SELECT * FROM R2`)
	if err != nil || len(r2.Rows) != 1 || r2.Rows[0][0].Int() != 2 {
		t.Errorf("max logged-in count: %v %v", r2, err)
	}

	// Snapshot cache control and stats surface.
	db.ResetSnapshotCache()
	if err := conn.Exec(fmt.Sprintf(`SELECT AS OF %d COUNT(*) FROM logged_in`, snap), nil); err != nil {
		t.Fatal(err)
	}
	if db.PagelogPages() == 0 {
		t.Error("expected archived pages after updates")
	}
}

func TestPublicAPIUDF(t *testing.T) {
	db, conn := openTestDB(t)
	db.RegisterFunc(rql.FuncDef{
		Name: "shout", MinArgs: 1, MaxArgs: 1,
		Fn: func(_ *rql.FuncContext, args []rql.Value) (rql.Value, error) {
			return rql.Text(strings.ToUpper(args[0].String()) + "!"), nil
		},
	})
	rows, err := conn.Query(`SELECT shout('hi')`)
	if err != nil || rows.Rows[0][0].Text() != "HI!" {
		t.Fatalf("UDF: %v %v", rows, err)
	}
}

func TestPublicAPIValues(t *testing.T) {
	_, conn := openTestDB(t)
	if err := conn.Exec(`CREATE TABLE t (a, b, c, d)`, nil); err != nil {
		t.Fatal(err)
	}
	err := conn.Exec(`INSERT INTO t VALUES (?, ?, ?, ?)`, nil,
		rql.Int(1), rql.Float(2.5), rql.Text("x"), rql.Null())
	if err != nil {
		t.Fatal(err)
	}
	rows, err := conn.Query(`SELECT a, b, c, d FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	r := rows.Rows[0]
	if r[0].Int() != 1 || r[1].Float() != 2.5 || r[2].Text() != "x" || !r[3].IsNull() {
		t.Errorf("values: %v", r)
	}
	st, err := conn.TableStats("t")
	if err != nil || st.Rows != 1 {
		t.Errorf("TableStats: %+v %v", st, err)
	}
}
